"""Client-side resilience: reconnect-with-backoff across a daemon
restart, bounded retry budgets, and honoring retry-after hints."""

import socket
import threading
import time

import pytest

from repro.core.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.core import CompileService
from repro.service.server import AkgdServer


def _start_daemon(port=0, **service_kwargs):
    service = CompileService(workers=1, **service_kwargs)
    server = AkgdServer(("127.0.0.1", port), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return service, server, thread


def _stop_daemon(service, server, thread):
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    service.close()


def _free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestReconnect:
    def test_client_survives_daemon_restart(self):
        service1, server1, thread1 = _start_daemon()
        port = server1.server_address[1]
        client = ServiceClient(
            "127.0.0.1", port, timeout=60, retries=10, backoff=0.05
        )
        assert client.ping()
        _stop_daemon(service1, server1, thread1)

        # The daemon is down; bring a replacement up on the same port
        # while the client is already retrying.
        replacement = {}

        def restart():
            time.sleep(0.3)
            replacement["service"], replacement["server"], replacement[
                "thread"
            ] = _start_daemon(port=port)

        restarter = threading.Thread(target=restart)
        restarter.start()
        try:
            response = client.compile("relu", [8, 8])
            assert response["ok"] is True
        finally:
            restarter.join()
            _stop_daemon(
                replacement["service"],
                replacement["server"],
                replacement["thread"],
            )

    def test_retry_budget_exhausts_typed(self):
        client = ServiceClient(
            "127.0.0.1", _free_port(), timeout=1, retries=2, backoff=0.01
        )
        start = time.monotonic()
        with pytest.raises(ServiceError):
            client.ping()
        # Two retries at ~10/20ms backoff: fails fast, not after minutes.
        assert time.monotonic() - start < 10

    def test_zero_retries_fails_on_first_error(self):
        client = ServiceClient(
            "127.0.0.1", _free_port(), timeout=1, retries=0
        )
        with pytest.raises(ServiceError):
            client.ping()


class TestRetryAfter:
    def test_overload_hint_is_honored(self, monkeypatch):
        client = ServiceClient(
            "127.0.0.1", 1, overload_retries=2, max_retry_after=5.0
        )
        calls = []
        responses = [
            {
                "ok": False,
                "error": {
                    "type": "ServiceOverloadError",
                    "exit_code": 14,
                    "retry_after": 0.15,
                },
            },
            {"ok": True, "pong": True},
        ]

        def fake_once(payload):
            calls.append(time.monotonic())
            return responses.pop(0)

        monkeypatch.setattr(client, "_request_once", fake_once)
        response = client.request({"kind": "ping"})
        assert response["ok"] is True
        assert len(calls) == 2
        assert calls[1] - calls[0] >= 0.15

    def test_hint_is_clamped(self, monkeypatch):
        client = ServiceClient(
            "127.0.0.1", 1, overload_retries=1, max_retry_after=0.05
        )
        calls = []
        responses = [
            {
                "ok": False,
                "error": {
                    "type": "ServiceOverloadError",
                    "exit_code": 14,
                    "retry_after": 120.0,
                },
            },
            {"ok": True, "pong": True},
        ]

        def fake_once(payload):
            calls.append(time.monotonic())
            return responses.pop(0)

        monkeypatch.setattr(client, "_request_once", fake_once)
        assert client.request({"kind": "ping"})["ok"] is True
        # A confused daemon's 2-minute hint must not park the client.
        assert calls[1] - calls[0] < 2.0

    def test_overload_returned_when_budget_zero(self, monkeypatch):
        client = ServiceClient("127.0.0.1", 1, overload_retries=0)
        overload = {
            "ok": False,
            "error": {
                "type": "ServiceOverloadError",
                "exit_code": 14,
                "retry_after": 9.0,
            },
        }
        monkeypatch.setattr(client, "_request_once", lambda payload: overload)
        response = client.request({"kind": "ping"})
        assert response["error"]["type"] == "ServiceOverloadError"

    def test_live_overload_response_carries_hint(self):
        """End-to-end: a saturated daemon's wire response has the hint."""
        service = CompileService(workers=1, queue_size=1, autostart=False)
        server = AkgdServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            "127.0.0.1", server.server_address[1], timeout=60
        )
        try:
            filler = threading.Thread(
                target=client.compile,
                args=("matmul", [16, 16, 16]),
                kwargs={"name": "filler"},
            )
            filler.start()
            time.sleep(0.1)  # the filler occupies the single queue slot
            shed = client.compile("matmul", [32, 32, 32], name="shed")
            assert shed["ok"] is False
            assert shed["error"]["type"] == "ServiceOverloadError"
            assert shed["error"]["exit_code"] == 14
            assert shed["error"]["retry_after"] > 0
            service.start()
            filler.join(timeout=300)
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()
