"""Service-grade fault tolerance: admission control, deadlines,
quarantine, worker supervision, ticket abandonment and graceful drain."""

import time

import pytest

from repro.core import resilience
from repro.core.errors import (
    QuarantinedError,
    ServiceError,
    ServiceOverloadError,
    exit_code_for,
)
from repro.ir import ops
from repro.ir.tensor import placeholder
from repro.service import CompileService, ServiceRequest


def _matmul(m=24):
    a = placeholder((m, m), "fp16", name="A")
    b = placeholder((m, m), "fp16", name="B")
    return ops.matmul(a, b, name="out")


def _relu(shape=(16, 24)):
    x = placeholder(shape, "fp16", name="X")
    return ops.relu(x, name="out")


class TestAdmissionControl:
    def test_queue_full_sheds_with_retry_after(self):
        with CompileService(workers=1, queue_size=1, autostart=False) as svc:
            held = svc.submit(ServiceRequest("compile", _matmul(16), name="q1"))
            with pytest.raises(ServiceOverloadError) as ei:
                svc.submit(ServiceRequest("compile", _matmul(32), name="q2"))
            assert ei.value.retry_after > 0
            assert exit_code_for(ei.value) == 14
            stats = svc.stats()
            assert stats["rejected"] == 1
            # The shed submission left no residue: not in-flight, not
            # counted against any client.
            assert stats["inflight"] == 1
            svc.start()
            assert held.result(timeout=300).ok

    def test_shed_is_still_a_service_error(self):
        """Pre-taxonomy callers catching ServiceError keep working."""
        with CompileService(workers=1, queue_size=1, autostart=False) as svc:
            svc.submit(ServiceRequest("compile", _matmul(16), name="s1"))
            with pytest.raises(ServiceError):
                svc.submit(ServiceRequest("compile", _matmul(32), name="s2"))
            svc.start()

    def test_per_client_fairness_cap(self):
        with CompileService(workers=1, autostart=False, max_per_client=1) as svc:
            t1 = svc.submit(
                ServiceRequest("compile", _matmul(16), name="fa", client_id="a")
            )
            with pytest.raises(ServiceOverloadError):
                svc.submit(
                    ServiceRequest(
                        "compile", _matmul(32), name="fb", client_id="a"
                    )
                )
            # A different client is not starved by a's cap.
            t2 = svc.submit(
                ServiceRequest("compile", _matmul(32), name="fb", client_id="b")
            )
            assert svc.stats()["client_sheds"] == 1
            svc.start()
            assert t1.result(timeout=300).ok
            assert t2.result(timeout=300).ok
            # The cap is released once the build completes.
            t3 = svc.submit(
                ServiceRequest("compile", _relu(), name="fc", client_id="a")
            )
            assert t3.result(timeout=300).ok

    def test_retry_after_hint_in_stats(self):
        with CompileService(workers=2) as svc:
            assert svc.stats()["retry_after_hint"] > 0


class TestDeadlines:
    def test_expired_in_queue_fails_fast(self):
        with CompileService(workers=1, autostart=False) as svc:
            t = svc.submit(
                ServiceRequest(
                    "compile", _matmul(), name="dl", deadline_seconds=0.01
                )
            )
            time.sleep(0.05)
            svc.start()
            res = t.result(timeout=60)
            assert not res.ok
            assert res.error["type"] == "StageTimeoutError"
            assert svc.stats()["deadline_expired"] == 1

    def test_deadline_clamps_stage_budget(self):
        """The end-to-end deadline bounds every stage's budget: a stage
        can never be granted more time than the whole request has left."""
        svc = CompileService(workers=1, autostart=False, default_stage_seconds=120.0)
        try:
            req = ServiceRequest("compile", _relu(), deadline_seconds=5.0)
            with resilience.deadline_scope(
                "service.request", time.monotonic() + 2.0
            ):
                options = svc._effective_options(req)
            assert options.budget.stage_seconds <= 2.0
        finally:
            svc.close()

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ServiceError):
            ServiceRequest("compile", _relu(), deadline_seconds=0.0)

    def test_generous_deadline_compiles_fine(self):
        with CompileService(workers=1) as svc:
            res = svc.run(
                ServiceRequest(
                    "compile", _relu(), name="roomy", deadline_seconds=300.0
                ),
                timeout=300,
            )
            assert res.ok


class TestQuarantine:
    def test_breaker_trips_blocks_and_probes(self):
        with CompileService(
            workers=1,
            quarantine_threshold=2,
            quarantine_cooldown=0.2,
            default_stage_seconds=5.0,
        ) as svc:

            def poison():
                return ServiceRequest(
                    "compile",
                    _matmul(),
                    name="poison",
                    fault_spec="ilp.solve:delay",
                )

            first = svc.run(poison(), timeout=300)
            assert not first.ok
            assert first.error["type"] == "StageTimeoutError"
            second = svc.run(poison(), timeout=300)
            assert not second.ok
            # Two consecutive timeouts for this IR digest: breaker open.
            # The clean request is blocked too — the breaker keys the
            # *kernel*, not the fault spec.
            with pytest.raises(QuarantinedError) as ei:
                svc.submit(ServiceRequest("compile", _matmul(), name="poison"))
            assert ei.value.retry_after > 0
            assert exit_code_for(ei.value) == 15
            stats = svc.stats()
            assert stats["quarantine_trips"] == 1
            assert stats["quarantine_blocked"] == 1
            assert stats["quarantine_open"] == 1
            # Other kernels keep compiling while one digest is poisoned.
            healthy = svc.run(
                ServiceRequest("compile", _relu(), name="healthy"), timeout=300
            )
            assert healthy.ok
            # After the cool-down one half-open probe goes through; its
            # success closes the breaker.
            time.sleep(0.25)
            probe = svc.run(
                ServiceRequest("compile", _matmul(), name="poison"), timeout=300
            )
            assert probe.ok
            stats = svc.stats()
            assert stats["quarantine_probes"] == 1
            assert stats["quarantine_open"] == 0

    def test_deterministic_typed_errors_do_not_quarantine(self):
        """A kernel that fails *deterministically* with a typed pipeline
        error is the request's problem — it must not be quarantined."""
        with CompileService(
            workers=1, quarantine_threshold=2, default_stage_seconds=5.0
        ) as svc:
            for _ in range(4):
                res = svc.run(
                    ServiceRequest(
                        "compile",
                        _matmul(),
                        name="det",
                        fault_spec="service.dispatch:error",
                    ),
                    timeout=300,
                )
                assert not res.ok
            stats = svc.stats()
            assert stats["quarantine_trips"] == 0
            assert stats["quarantine_open"] == 0


class TestSupervision:
    def test_stuck_worker_requeued_once_and_succeeds(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "service.worker:hang#limit=1")
        with CompileService(
            workers=1, watchdog_seconds=0.3, supervise_interval=0.05
        ) as svc:
            res = svc.run(
                ServiceRequest("compile", _relu(), name="stuck"), timeout=60
            )
            assert res.ok
            stats = svc.stats()
            assert stats["supervisor_requeues"] == 1
            assert stats["worker_restarts"] >= 1
            assert stats["zombie_workers"] >= 1
            # The replacement keeps the pool at strength.
            assert stats["live_workers"] >= 1

    def test_stuck_twice_fails_typed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "service.worker:hang#limit=2")
        with CompileService(
            workers=1, watchdog_seconds=0.2, supervise_interval=0.05
        ) as svc:
            res = svc.run(
                ServiceRequest("compile", _relu(), name="stuck2"), timeout=60
            )
            assert not res.ok
            assert res.error["type"] == "StageTimeoutError"
            assert "stuck" in res.error["message"]
            assert svc.stats()["supervisor_requeues"] == 1

    def test_healthy_requests_unsupervised_without_watchdog(self):
        with CompileService(workers=1) as svc:
            res = svc.run(
                ServiceRequest("compile", _relu(), name="calm"), timeout=300
            )
            assert res.ok
            stats = svc.stats()
            assert stats["supervisor_requeues"] == 0
            assert stats["worker_restarts"] == 0


class TestAbandonment:
    def test_last_abandon_cancels_queued_entry(self):
        with CompileService(workers=1, autostart=False) as svc:
            t1 = svc.submit(ServiceRequest("compile", _matmul(), name="ab"))
            t2 = svc.submit(ServiceRequest("compile", _matmul(), name="ab"))
            assert t2.coalesced
            assert svc.stats()["inflight"] == 1
            t1.abandon()
            # One waiter left: the entry stays live (and visible).
            assert svc.stats()["inflight"] == 1
            t2.abandon()
            # Fully abandoned: evicted, not overcounted as in-flight.
            assert svc.stats()["inflight"] == 0
            svc.start()
            svc.close(wait=True)
            assert svc.stats()["cancelled"] == 1

    def test_result_timeout_abandons(self):
        with CompileService(workers=1, autostart=False) as svc:
            t = svc.submit(ServiceRequest("compile", _matmul(), name="to"))
            with pytest.raises(ServiceError):
                t.result(timeout=0.02)
            assert svc.stats()["inflight"] == 0
            with pytest.raises(ServiceError):
                t.result(timeout=0.02)  # an abandoned ticket stays dead
            svc.start()

    def test_abandon_after_completion_is_noop(self):
        with CompileService(workers=1) as svc:
            t = svc.submit(ServiceRequest("compile", _relu(), name="late"))
            res = t.result(timeout=300)
            assert res.ok
            t.abandon()
            assert t.result(timeout=1).ok

    def test_new_submission_after_cancellation_builds_fresh(self):
        with CompileService(workers=1, autostart=False) as svc:
            old = svc.submit(ServiceRequest("compile", _matmul(), name="re"))
            old.abandon()
            fresh = svc.submit(ServiceRequest("compile", _matmul(), name="re"))
            assert not fresh.coalesced
            svc.start()
            assert fresh.result(timeout=300).ok


class TestShutdownPaths:
    def test_graceful_drain_fulfils_queued_and_inflight(self):
        svc = CompileService(workers=2)
        tickets = [
            svc.submit(ServiceRequest("compile", _matmul(m), name=f"dr{m}"))
            for m in (16, 24, 32)
        ]
        svc.initiate_shutdown()
        assert svc.state in ("draining", "stopped")
        with pytest.raises(ServiceError):
            svc.submit(ServiceRequest("compile", _relu(), name="late"))
        results = [t.result(timeout=300) for t in tickets]
        assert all(r.ok for r in results)
        svc.close(wait=True)
        assert svc.state == "stopped"

    def test_shutdown_with_inflight_coalesced_group(self):
        svc = CompileService(workers=1, autostart=False)
        tickets = [
            svc.submit(ServiceRequest("compile", _matmul(), name="grp"))
            for _ in range(5)
        ]
        svc.start()
        svc.initiate_shutdown()
        results = [t.result(timeout=300) for t in tickets]
        assert all(r.ok for r in results)
        assert len({r.request_id for r in results}) == 1
        svc.close(wait=True)

    def test_close_with_full_queue_fulfils_everything(self):
        svc = CompileService(workers=1, queue_size=4, autostart=False)
        tickets = [
            svc.submit(
                ServiceRequest("compile", _relu((8, 8 + 4 * i)), name=f"fq{i}")
            )
            for i in range(4)
        ]
        svc.start()
        svc.close(wait=True)
        results = [t.result(timeout=10) for t in tickets]
        assert all(r.ok for r in results)

    def test_unstarted_close_fails_tickets_typed(self):
        svc = CompileService(workers=1, autostart=False)
        t = svc.submit(ServiceRequest("compile", _matmul(), name="never"))
        svc.close(wait=True)
        res = t.result(timeout=5)
        assert not res.ok
        assert res.error["type"] == "ServiceError"
        assert res.error["exit_code"] == 12
        assert svc.state == "stopped"

    def test_double_close_is_idempotent(self):
        svc = CompileService(workers=1)
        svc.close(wait=True)
        svc.close(wait=True)
        svc.close(wait=False)
        assert svc.state == "stopped"
        with pytest.raises(ServiceError):
            svc.submit(ServiceRequest("compile", _relu(), name="dead"))
