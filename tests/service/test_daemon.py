"""The akgd TCP daemon: wire schema, control verbs, per-request errors."""

import json
import threading

import pytest

from repro.core.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.core import CompileService
from repro.service.server import AkgdServer
from repro.service.wire import demo_kernel, request_from_json


@pytest.fixture()
def daemon():
    """A live daemon on an ephemeral port + a client bound to it."""
    service = CompileService(workers=2, default_stage_seconds=120.0)
    server = AkgdServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("127.0.0.1", server.server_address[1], timeout=300.0)
    try:
        yield client
    finally:
        server.initiate_shutdown()
        thread.join(timeout=10)
        server.server_close()
        service.close()


class TestDaemon:
    def test_ping(self, daemon):
        assert daemon.ping() is True

    def test_compile_round_trip(self, daemon):
        res = daemon.compile("relu", [16, 24])
        assert res["ok"] is True
        assert res["kind"] == "compile"
        assert res["cycles"] > 0
        assert len(res["program_sha256"]) == 64

    def test_duplicate_is_bit_identical_and_cached(self, daemon):
        first = daemon.compile("matmul", [16, 16, 16])
        second = daemon.compile("matmul", [16, 16, 16])
        assert second["program_sha256"] == first["program_sha256"]
        assert second["cached"] is True

    def test_stats_reports_service_counters(self, daemon):
        daemon.compile("relu", [8, 8])
        stats = daemon.stats()
        assert stats["completed"] >= 1

    def test_malformed_json_is_service_error(self, daemon):
        import socket

        with socket.create_connection(
            ("127.0.0.1", daemon.port), timeout=30
        ) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
        res = json.loads(line)
        assert res["ok"] is False
        assert res["error"]["type"] == "ServiceError"
        assert res["error"]["exit_code"] == 12

    def test_bad_request_fields_are_service_error(self, daemon):
        res = daemon.request({"kind": "compile", "op": "nope", "shape": [8]})
        assert res["ok"] is False
        assert res["error"]["type"] == "ServiceError"

    def test_fault_request_fails_typed_daemon_survives(self, daemon):
        bad = daemon.request(
            {
                "kind": "compile",
                "op": "relu",
                "shape": [16, 16],
                "fault_spec": "storage.promote:error",
            }
        )
        assert bad["ok"] is False
        assert bad["error"]["type"] == "CodegenError"
        assert bad["error"]["exit_code"] == 8
        # The daemon keeps serving: same kernel, no fault, compiles fine.
        good = daemon.compile("relu", [16, 16])
        assert good["ok"] is True

    def test_replay_outputs_are_deterministic(self, daemon):
        payload = {"kind": "replay", "op": "relu", "shape": [8, 12], "seed": 3}
        a = daemon.request(payload)
        b = daemon.request(payload)
        assert a["ok"] and b["ok"]
        assert a["outputs"] == b["outputs"]

    def test_shutdown_stops_the_daemon(self, daemon):
        assert daemon.shutdown() is True


class TestWireSchema:
    def test_demo_kernel_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            demo_kernel("matmul", [16, 16])  # needs M,K,N
        with pytest.raises(ValueError):
            demo_kernel("conv2d", [16, 16])  # needs N,C,H,W

    def test_request_from_json_validates_fault_spec(self):
        with pytest.raises(ServiceError):
            request_from_json(
                {
                    "kind": "compile",
                    "op": "relu",
                    "shape": [8, 8],
                    "fault_spec": "no-such-grammar",
                }
            )

    def test_request_from_json_builds_options(self):
        req = request_from_json(
            {
                "kind": "compile",
                "op": "relu",
                "shape": [8, 8],
                "options": {"stage_timeout": 9.0, "no_fusion": True},
            }
        )
        assert req.options.budget.stage_seconds == 9.0
        assert req.options.post_tiling_fusion is False

    def test_client_without_daemon_raises_service_error(self):
        client = ServiceClient("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(ServiceError):
            client.ping()
