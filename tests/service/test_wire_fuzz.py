"""Wire hardening: every malformed payload answers typed, never a
traceback, never a dead daemon."""

import json
import random
import socket
import string
import threading

import pytest

from repro.core.errors import ServiceError
from repro.service.core import CompileService
from repro.service.server import MAX_LINE_BYTES, AkgdServer
from repro.service.wire import request_from_json


@pytest.fixture()
def server():
    """An AkgdServer whose handle_line we drive directly (no socket)."""
    service = CompileService(workers=1)
    srv = AkgdServer(("127.0.0.1", 0), service)
    try:
        yield srv
    finally:
        srv.server_close()
        service.close()


def _assert_typed_error(response):
    assert isinstance(response, dict)
    assert response["ok"] is False
    error = response["error"]
    assert isinstance(error["type"], str) and error["type"]
    assert isinstance(error["message"], str)
    assert isinstance(error["exit_code"], int) and error["exit_code"] >= 1
    # Never a traceback over the wire.
    assert "Traceback" not in error["message"]


MALFORMED_LINES = [
    b"this is not json",
    b"\xff\xfe garbage bytes \x80",
    b"42",
    b'"just a string"',
    b"[1, 2, 3]",
    b"null",
    b"true",
    b"{}",
    b'{"kind": "compile"}',
    b'{"kind": "nonsense", "op": "relu", "shape": [8, 8]}',
    b'{"op": "relu"}',
    b'{"op": "relu", "shape": []}',
    b'{"op": "relu", "shape": "8x8"}',
    b'{"op": "relu", "shape": [8, "eight"]}',
    b'{"op": "relu", "shape": [true, 8]}',
    b'{"op": 7, "shape": [8, 8]}',
    b'{"op": "warp_drive", "shape": [8, 8]}',
    b'{"op": "matmul", "shape": [8, 8]}',
    b'{"op": "relu", "shape": [8, 8], "surprise": 1}',
    b'{"op": "relu", "shape": [8, 8], "batch_max": "16"}',
    b'{"op": "relu", "shape": [8, 8], "batch_max": true}',
    b'{"op": "relu", "shape": [8, 8], "batch_max": 4}',
    b'{"op": "relu", "shape": [8, 8], "deadline": "soon"}',
    b'{"op": "relu", "shape": [8, 8], "deadline": -1}',
    b'{"op": "relu", "shape": [8, 8], "deadline": 0}',
    b'{"op": "relu", "shape": [8, 8], "client_id": 9}',
    b'{"op": "relu", "shape": [8, 8], "seed": "zero"}',
    b'{"op": "relu", "shape": [8, 8], "engine": 3}',
    b'{"op": "relu", "shape": [8, 8], "name": ["a"]}',
    b'{"op": "relu", "shape": [8, 8], "fault_spec": 17}',
    b'{"op": "relu", "shape": [8, 8], "fault_spec": "bogus.site:error"}',
    b'{"op": "relu", "shape": [8, 8], "tune": "hard"}',
    b'{"op": "relu", "shape": [8, 8], "options": "fast"}',
    b'{"op": "relu", "shape": [8, 8], "options": {"warp": 9}}',
    b'{"op": "relu", "shape": [8, 8], "options": {"stage_timeout": "fast"}}',
    b'{"op": "relu", "shape": [8, 8], "options": {"stage_timeout": true}}',
    b'{"op": "relu", "shape": [8, 8], "options": {"stage_timeout": -2}}',
    b'{"op": "relu", "shape": [8, 8], "options": {"solver_budget": "lots"}}',
    b'{"op": "relu", "shape": [8, 8], "options": {"sync_policy": "psychic"}}',
    b'{"op": "relu", "shape": [8, 8], "kernel": "three"}',
    b'{"op": "conv2d", "shape": [1, 4, 8]}',
]


class TestHandleLineFuzz:
    def test_every_malformed_line_answers_typed(self, server):
        for line in MALFORMED_LINES:
            response = server.handle_line(line)
            _assert_typed_error(response)

    def test_random_bytes_never_crash(self, server):
        rng = random.Random(1234)
        alphabet = string.printable + "\x00\xff{}[]:,\""
        for _ in range(200):
            line = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(1, 120))
            ).encode("utf-8", errors="ignore")
            response = server.handle_line(line)
            assert isinstance(response, dict)
            assert "ok" in response

    def test_random_key_shuffles_never_crash(self, server):
        """Structured fuzz: valid-ish objects with mutated keys/values."""
        rng = random.Random(99)
        values = [None, True, -1, 0.5, "x", [], [1], {}, {"a": 1}, "relu"]
        keys = [
            "kind", "op", "shape", "dtype", "batch_max", "deadline",
            "client_id", "seed", "engine", "options", "tune", "zzz",
        ]
        for _ in range(150):
            payload = {
                rng.choice(keys): rng.choice(values)
                for _ in range(rng.randrange(0, 6))
            }
            response = server.handle_line(json.dumps(payload).encode())
            assert isinstance(response, dict)
            assert "ok" in response

    def test_daemon_survives_fuzzing(self, server):
        for line in MALFORMED_LINES[:10]:
            server.handle_line(line)
        response = server.handle_line(
            json.dumps({"op": "relu", "shape": [8, 8]}).encode()
        )
        assert response["ok"] is True
        assert len(response["program_sha256"]) == 64

    def test_valid_extras_accepted(self, server):
        """The new deadline/client_id keys parse into the request."""
        request = request_from_json(
            {
                "op": "relu",
                "shape": [8, 8],
                "deadline": 60.0,
                "client_id": "fuzzer",
            }
        )
        assert request.deadline_seconds == 60.0
        assert request.client_id == "fuzzer"

    def test_unknown_key_names_the_culprit(self, server):
        response = server.handle_line(
            b'{"op": "relu", "shape": [8, 8], "sneaky": 1}'
        )
        _assert_typed_error(response)
        assert "sneaky" in response["error"]["message"]


class TestOversizedLines:
    def test_oversized_line_gets_typed_error_and_connection_survives(self):
        service = CompileService(workers=1)
        srv = AkgdServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection(
                ("127.0.0.1", srv.server_address[1]), timeout=30
            ) as sock:
                big = b'{"op": "relu", "pad": "' + b"x" * (MAX_LINE_BYTES + 64)
                sock.sendall(big + b'"}\n')
                reader = sock.makefile("rb")
                line = reader.readline()
                response = json.loads(line.decode())
                _assert_typed_error(response)
                assert "exceeds" in response["error"]["message"]
                # Same connection still serves the next request.
                sock.sendall(b'{"kind": "ping"}\n')
                pong = json.loads(reader.readline().decode())
                assert pong["ok"] is True and pong["pong"] is True
        finally:
            srv.shutdown()
            thread.join(timeout=10)
            srv.server_close()
            service.close()


class TestWireFaultSite:
    def test_injected_wire_fault_answers_typed(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "service.wire:error#limit=1")
        response = server.handle_line(b'{"kind": "ping"}')
        _assert_typed_error(response)
        assert response["error"]["type"] == "ServiceError"
        # The fault burnt its limit; the daemon answers normally now.
        pong = server.handle_line(b'{"kind": "ping"}')
        assert pong["ok"] is True


class TestErrorBodies:
    def test_retry_after_travels_in_error_body(self):
        from repro.core.errors import ServiceOverloadError
        from repro.service.wire import error_to_json

        body = error_to_json(ServiceOverloadError("full", retry_after=1.5))
        assert body["error"]["retry_after"] == 1.5
        assert body["error"]["exit_code"] == 14

    def test_plain_service_error_has_no_retry_after(self):
        from repro.service.wire import error_to_json

        body = error_to_json(ServiceError("nope"))
        assert "retry_after" not in body["error"]
