"""Tests for the virtual ISA and the DAE pipeline simulator."""

import pytest

from repro.hw.isa import (
    Barrier,
    DmaInstr,
    Loop,
    Pipe,
    Program,
    ScalarInstr,
    SetFlag,
    VectorInstr,
    WaitFlag,
)
from repro.hw.simulator import DeadlockError, Simulator
from repro.hw.spec import HardwareSpec


class TestIsa:
    def test_dma_pipe_selection(self):
        assert DmaInstr("GM", "L1", 64).pipe is Pipe.MTE2
        assert DmaInstr("GM", "UB", 64).pipe is Pipe.MTE2
        assert DmaInstr("L1", "L0A", 64).pipe is Pipe.MTE1
        assert DmaInstr("UB", "GM", 64).pipe is Pipe.MTE3

    def test_invalid_path_rejected(self):
        with pytest.raises(ValueError):
            DmaInstr("L0A", "GM", 64)

    def test_program_counts(self):
        p = Program(
            "p",
            [
                VectorInstr("add", 128, "fp16"),
                Loop(10, [ScalarInstr(1), ScalarInstr(2)]),
            ],
        )
        assert p.static_count() == 3
        assert p.flat_count() == 21

    def test_program_dump_contains_loop(self):
        p = Program("p", [Loop(4, [VectorInstr("add", 128, "fp16")])])
        text = p.dump()
        assert "loop x4" in text
        assert "vadd" in text

    def test_negative_loop_count_rejected(self):
        with pytest.raises(ValueError):
            Loop(-1, [])


class TestSpec:
    def test_dtype_bytes(self):
        hw = HardwareSpec()
        assert hw.dtype_bytes("fp16") == 2
        assert hw.dtype_bytes("fp32") == 4
        with pytest.raises(ValueError):
            hw.dtype_bytes("fp64")

    def test_usable_capacity_halves_for_double_buffering(self):
        hw = HardwareSpec()
        assert hw.usable_capacity("UB", True) == hw.buffer_capacity["UB"] // 2
        assert hw.usable_capacity("UB", False) == hw.buffer_capacity["UB"]

    def test_transfer_cycles_scale_with_bytes(self):
        hw = HardwareSpec()
        small = hw.transfer_cycles("GM", "UB", 128)
        big = hw.transfer_cycles("GM", "UB", 128 * 1024)
        assert big > small
        # Non-contiguous runs add overhead.
        strided = hw.transfer_cycles("GM", "UB", 128 * 1024, contiguous_runs=64)
        assert strided > big

    def test_cube_cycles_round_to_blocks(self):
        hw = HardwareSpec()
        one_block = hw.cube_cycles(16, 16, 16)
        padded = hw.cube_cycles(17, 16, 16)  # 2 blocks along m
        assert padded > one_block

    def test_vector_cycles_alignment_penalty(self):
        hw = HardwareSpec()
        aligned = hw.vector_cycles(1024, "fp16", aligned=True)
        unaligned = hw.vector_cycles(1024, "fp16", aligned=False)
        assert unaligned > aligned


class TestSimulator:
    def test_single_instr(self):
        sim = Simulator()
        report = sim.run(Program("p", [VectorInstr("add", 128, "fp16")]))
        assert report.total_cycles > 0
        assert report.instr_counts["VectorInstr"] == 1

    def test_independent_pipes_overlap(self):
        sim = Simulator()
        dma = DmaInstr("GM", "UB", 64 * 1024)
        vec = VectorInstr("add", 4096, "fp16")
        together = sim.run(Program("p", [dma, vec])).total_cycles
        dma_only = sim.run(Program("p", [dma])).total_cycles
        vec_only = sim.run(Program("p", [vec])).total_cycles
        # No flags between them: they run concurrently.
        assert together == max(dma_only, vec_only)

    def test_flags_serialise(self):
        sim = Simulator()
        dma = DmaInstr("GM", "UB", 64 * 1024)
        vec = VectorInstr("add", 4096, "fp16")
        program = Program(
            "p",
            [
                dma,
                SetFlag(Pipe.MTE2, Pipe.V, 0),
                WaitFlag(Pipe.MTE2, Pipe.V, 0),
                vec,
            ],
        )
        serial = sim.run(program).total_cycles
        dma_only = sim.run(Program("p", [dma])).total_cycles
        vec_only = sim.run(Program("p", [vec])).total_cycles
        assert serial >= dma_only + vec_only

    def test_wait_without_set_deadlocks(self):
        sim = Simulator()
        with pytest.raises(DeadlockError):
            sim.run(Program("p", [WaitFlag(Pipe.MTE2, Pipe.V, 0)]))

    def test_barrier_joins_pipes(self):
        sim = Simulator()
        program = Program(
            "p",
            [
                DmaInstr("GM", "UB", 64 * 1024),
                Barrier(),
                VectorInstr("add", 4096, "fp16"),
            ],
        )
        report = sim.run(program)
        dma_only = sim.run(Program("p", [DmaInstr("GM", "UB", 64 * 1024)])).total_cycles
        assert report.total_cycles > dma_only

    def test_loop_unroll_matches_manual(self):
        sim = Simulator()
        body = [VectorInstr("add", 256, "fp16")]
        looped = sim.run(Program("p", [Loop(5, body)])).total_cycles
        manual = sim.run(Program("p", body * 5)).total_cycles
        assert looped == manual

    def test_large_loop_extrapolation_close_to_exact(self):
        spec = HardwareSpec()
        sim = Simulator(spec)
        body = [
            DmaInstr("GM", "UB", 8 * 1024),
            SetFlag(Pipe.MTE2, Pipe.V, 0),
            WaitFlag(Pipe.MTE2, Pipe.V, 0),
            VectorInstr("add", 4096, "fp16"),
        ]
        n = 100
        extrapolated = sim.run(Program("p", [Loop(n, body)])).total_cycles
        exact = sim.run(Program("p", body * n)).total_cycles
        assert abs(extrapolated - exact) / exact < 0.05

    def test_double_buffer_pattern_overlaps(self):
        """With depth-2 loop-carried flags, DMA(i+1) overlaps compute(i)."""
        sim = Simulator()
        dma_c = 8 * 1024
        body_db = [
            WaitFlag(Pipe.V, Pipe.MTE2, 0),
            DmaInstr("GM", "UB", dma_c),
            SetFlag(Pipe.MTE2, Pipe.V, 1),
            WaitFlag(Pipe.MTE2, Pipe.V, 1),
            VectorInstr("add", 4096, "fp16"),
            SetFlag(Pipe.V, Pipe.MTE2, 0),
        ]
        prologue2 = [SetFlag(Pipe.V, Pipe.MTE2, 0)] * 2
        prologue1 = [SetFlag(Pipe.V, Pipe.MTE2, 0)] * 1
        n = 64
        db = sim.run(Program("p", prologue2 + [Loop(n, body_db)])).total_cycles
        single = sim.run(Program("p", prologue1 + [Loop(n, body_db)])).total_cycles
        assert db < single

    def test_utilization_sums(self):
        sim = Simulator()
        report = sim.run(Program("p", [VectorInstr("add", 12800, "fp16")]))
        assert report.utilization(Pipe.V) > 0.9
        assert report.utilization(Pipe.M) == 0.0

    def test_dma_bytes_accounting(self):
        sim = Simulator()
        report = sim.run(
            Program("p", [Loop(10, [DmaInstr("GM", "UB", 1000)])])
        )
        assert report.dma_bytes == 10000
