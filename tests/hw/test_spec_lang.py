"""Tests for the Fig. 8 memory-hierarchy specification language."""

import pytest

from repro.hw.spec_lang import NpuSpecError, parse_npu_spec


EXAMPLE = """
# DaVinci-like manual specification
buf L1 (1048576)
buf UB (262144)
cube (L0A L0B -> L0C, 4096, 16)
vector (UB -> UB, 256, 32)
dataflow (GM -> L1, 128, 32)
dataflow (GM -> UB, 128, 32)
"""


class TestParsing:
    def test_full_example(self):
        spec = parse_npu_spec(EXAMPLE)
        assert len(spec.buffers) == 2
        assert len(spec.compute_units) == 2
        assert len(spec.dataflows) == 2
        cube = spec.compute_units[0]
        assert cube.compute_type == "cube"
        assert cube.in_bufs == ["L0A", "L0B"]
        assert cube.out_bufs == ["L0C"]
        assert cube.throughput == 4096
        assert cube.alignment == 16

    def test_roundtrip(self):
        spec = parse_npu_spec(EXAMPLE)
        again = parse_npu_spec(spec.render())
        assert len(again.statements) == len(spec.statements)

    @pytest.mark.parametrize(
        "bad",
        [
            "buf L1",                      # missing size
            "buf L1 (0)",                  # zero size
            "warp (UB -> UB, 1, 1)",       # unknown compute type
            "cube (L0A -> L0C, 0, 16)",    # zero throughput
            "dataflow GM -> L1, 1, 1",     # missing parens
            "nonsense line",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(NpuSpecError):
            parse_npu_spec(bad)

    def test_comments_ignored(self):
        spec = parse_npu_spec("# only a comment\n\nbuf UB (16)\n")
        assert len(spec.buffers) == 1


class TestHardwareOverlay:
    def test_buffer_capacity_overlay(self):
        spec = parse_npu_spec("buf UB (131072)")
        hw = spec.to_hardware_spec()
        assert hw.buffer_capacity["UB"] == 131072
        # Untouched buffers keep defaults.
        assert hw.buffer_capacity["L1"] == 1024 * 1024

    def test_dataflow_overlay(self):
        spec = parse_npu_spec("dataflow (GM -> L1, 64, 32)")
        hw = spec.to_hardware_spec()
        assert hw.bandwidth[("GM", "L1")] == 64.0

    def test_vector_throughput_overlay(self):
        spec = parse_npu_spec("vector (UB -> UB, 512, 32)")
        hw = spec.to_hardware_spec()
        assert hw.vector_bytes_per_cycle == 512
        assert hw.vector_lanes("fp16") == 256

    def test_cube_throughput_overlay(self):
        spec = parse_npu_spec("cube (L0A L0B -> L0C, 2048, 16)")
        hw = spec.to_hardware_spec()
        # Half the MAC throughput: two cycles per fractal block.
        assert hw.cube_cycles_per_block == 2
