"""Vectorized compiled-program replay: bit-exact against the scalar path.

``execute_program(engine="vectorized")`` replaces per-point membership
tests with a vectorized relation check and the fused-producer dedup sets
with boolean executed-masks; these tests pin both down with exact array
equality against the scalar replay (itself validated against
``evaluate_kernel``).
"""

import numpy as np
import pytest

from repro.codegen.program_exec import (
    _Membership,
    _ParametricBox,
    execute_program,
)
from repro.core.compiler import AkgOptions, build
from repro.ir import ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.runtime import vectorized
from repro.runtime.reference import evaluate_kernel

RNG = np.random.default_rng(11)


def rand(shape, dtype=np.float16):
    return RNG.standard_normal(shape).astype(dtype)


def assert_replay_engines_equal(result, inputs):
    scalar = result.execute(inputs, engine="scalar")
    vec = result.execute(inputs, engine="vectorized")
    auto = result.execute(inputs, engine="auto")
    oracle = evaluate_kernel(result.kernel, inputs, engine="scalar")
    for name in scalar:
        assert np.array_equal(scalar[name], vec[name]), name
        assert np.array_equal(scalar[name], auto[name]), name
        assert np.array_equal(scalar[name], oracle[name]), name
    return scalar


class TestReplayEquivalence:
    @pytest.mark.parametrize("tile_sizes", [[1, 1], [3, 5], [16, 16], [64, 64]])
    def test_elementwise_any_tiling(self, tile_sizes):
        x = placeholder((10, 14), name="X")
        out = ops.relu(ops.scalar_mul(x, -1.5, name="S"), name="OUT")
        result = build(
            out, "k", options=AkgOptions(emit_trace=True, tile_sizes=tile_sizes)
        )
        assert_replay_engines_equal(result, {"X": rand((10, 14), np.float32)})

    def test_matmul_tiled(self):
        a = placeholder((24, 20), name="A")
        b = placeholder((20, 12), name="B")
        result = build(
            ops.matmul(a, b, name="C"),
            "k",
            options=AkgOptions(emit_trace=True),
        )
        assert_replay_engines_equal(
            result, {"A": rand((24, 20)), "B": rand((20, 12))}
        )

    def test_conv2d_padded_replay(self):
        d = placeholder((1, 3, 10, 10), name="D")
        w = placeholder((4, 3, 3, 3), name="W")
        result = build(
            ops.relu(ops.conv2d(d, w, stride=(1, 1), padding=(1, 1)), name="OUT"),
            "k",
            options=AkgOptions(emit_trace=True),
        )
        assert_replay_engines_equal(
            result, {"D": rand((1, 3, 10, 10)), "W": rand((4, 3, 3, 3))}
        )

    def test_multi_group_transpose(self):
        x = placeholder((6, 9), name="X")
        t = ops.transpose(x, (1, 0), name="T")
        out = ops.relu(t, name="OUT")
        result = build(out, "k", options=AkgOptions(emit_trace=True))
        assert_replay_engines_equal(result, {"X": rand((6, 9), np.float32)})

    def test_overlapping_fused_producer_tiles(self):
        """Executed-masks must preserve no-redundant-recompute exactly:
        the producer accumulates, so any double execution corrupts."""
        a = placeholder((12,), name="A")
        pre = ops.scalar_add(a, 1.0, name="PRE")
        k = reduce_axis((0, 3), "k")
        c = compute((10,), lambda i: te_sum(pre[i + k], axis=k), name="C")
        result = build(
            c, "k", options=AkgOptions(emit_trace=True, tile_sizes=[4])
        )
        group = result.groups[-1]
        assert group.fused_producer_ids == ["S0"]
        assert group.total_tiles >= 2
        assert_replay_engines_equal(result, {"A": rand((12,), np.float32)})

    def test_paper_running_example_fused(self):
        """Fig. 3 (examples/conv_fusion.py): bias + conv + abs + relu with
        overlapped producer tiles, replayed bit-exactly on both engines."""
        H = W = 20
        a = placeholder((H, W), dtype="fp16", name="A")
        a1 = ops.scalar_add(a, 1.0, name="A1")
        b = placeholder((3, 3), dtype="fp16", name="B")
        kh = reduce_axis((0, 3), "kh")
        kw = reduce_axis((0, 3), "kw")
        c = compute(
            (H - 2, W - 2),
            lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
            name="C",
        )
        out = ops.relu(ops.abs_op(c, name="C1"), name="C2")
        result = build(out, "fused", options=AkgOptions(emit_trace=True))
        assert_replay_engines_equal(
            result, {"A": rand((H, W)), "B": rand((3, 3))}
        )

    def test_engine_param_validation(self):
        x = placeholder((4,), name="X")
        result = build(
            ops.relu(x, name="R"), "k", options=AkgOptions(emit_trace=True)
        )
        with pytest.raises(ValueError):
            result.execute({"X": rand((4,), np.float32)}, engine="nope")

    def test_runtime_fallback_still_exact(self, monkeypatch):
        """Force the vectorized per-tile path to abort: the scalar
        per-point fallback must produce the identical result."""
        x = placeholder((9, 9), name="X")
        out = ops.relu(x, name="OUT")
        result = build(
            out, "k", options=AkgOptions(emit_trace=True, tile_sizes=[4, 4])
        )
        xv = rand((9, 9), np.float32)
        expected = result.execute({"X": xv}, engine="scalar")

        def boom(*args, **kwargs):
            raise vectorized.Unvectorizable("forced for test")

        monkeypatch.setattr(vectorized, "run_statement_box", boom)
        vectorized.reset_exec_stats()
        got = execute_program(result.program, {"X": xv}, engine="vectorized")
        for name in expected:
            assert np.array_equal(expected[name], got[name]), name
        assert vectorized.exec_stats()["fallback_reasons"]["forced for test"] > 0


class TestParametricBox:
    def test_box_covers_and_filters_like_ilp(self):
        """The parametric box may be looser than the per-tile ILP box but
        must contain it, and membership filtering must select the same
        instance set."""
        from repro.poly.affine import AffineExpr, Constraint

        a = placeholder((12,), name="A")
        pre = ops.scalar_add(a, 1.0, name="PRE")
        k = reduce_axis((0, 3), "k")
        c = compute((10,), lambda i: te_sum(pre[i + k], axis=k), name="C")
        result = build(
            c, "k", options=AkgOptions(emit_trace=True, tile_sizes=[4])
        )
        group = result.groups[-1]
        for stmt in group.statements:
            rel = group.instance_relations[stmt.stmt_id]
            wrapped = rel.wrap()
            pbox = _ParametricBox(
                wrapped, stmt.iter_names, group.tile_dims, stmt.iter_extents
            )
            for tile in range(group.tile_counts[0]):
                tile_env = dict(zip(group.tile_dims, (tile,)))
                box = pbox.at(tile_env)
                cons = [
                    Constraint.eq(AffineExpr.variable(d), v)
                    for d, v in tile_env.items()
                ]
                image = rel.add_constraints(cons).range()
                ilp_box = None if image.is_empty() else image.bounding_box()
                if box is None:
                    assert ilp_box is None or all(
                        image.is_empty() for _ in [0]
                    )
                    continue
                if ilp_box is not None:
                    for (lo, hi), name in zip(box, stmt.iter_names):
                        assert lo <= ilp_box[name][0]
                        assert hi >= ilp_box[name][1]
                # Same instances selected, whichever box enumerates them.
                members_param = {
                    pt
                    for pt in _points(box)
                    if wrapped.contains({**tile_env, **dict(zip(stmt.iter_names, pt))})
                }
                members_ilp = set()
                if ilp_box is not None:
                    members_ilp = {
                        pt
                        for pt in _points(
                            [ilp_box[n] for n in stmt.iter_names]
                        )
                        if wrapped.contains(
                            {**tile_env, **dict(zip(stmt.iter_names, pt))}
                        )
                    }
                assert members_param == members_ilp

    def test_membership_mask_matches_contains(self):
        a = placeholder((12,), name="A")
        pre = ops.scalar_add(a, 1.0, name="PRE")
        k = reduce_axis((0, 3), "k")
        c = compute((10,), lambda i: te_sum(pre[i + k], axis=k), name="C")
        result = build(
            c, "k", options=AkgOptions(emit_trace=True, tile_sizes=[4])
        )
        group = result.groups[-1]
        for stmt in group.statements:
            wrapped = group.instance_relations[stmt.stmt_id].wrap()
            membership = _Membership(wrapped, group.tile_dims, stmt.iter_names)
            assert membership.exact
            pbox = _ParametricBox(
                wrapped, stmt.iter_names, group.tile_dims, stmt.iter_extents
            )
            for tile in range(group.tile_counts[0]):
                tile_env = dict(zip(group.tile_dims, (tile,)))
                box = pbox.at(tile_env)
                if box is None:
                    continue
                n = len(box)
                igrids = []
                for axis, (lo, hi) in enumerate(box):
                    shape = [1] * n
                    shape[axis] = hi - lo + 1
                    igrids.append(
                        np.arange(lo, hi + 1, dtype=np.int64).reshape(shape)
                    )
                mask = membership.mask((tile,), igrids)
                shape = tuple(hi - lo + 1 for lo, hi in box)
                full = (
                    np.ones(shape, bool)
                    if mask is None
                    else np.broadcast_to(
                        np.zeros(shape, bool) if mask is False else mask, shape
                    )
                )
                for offsets in np.ndindex(shape):
                    pt = tuple(lo + o for (lo, _), o in zip(box, offsets))
                    expected = wrapped.contains(
                        {**tile_env, **dict(zip(stmt.iter_names, pt))}
                    )
                    assert bool(full[offsets]) == expected, (tile, pt)


def _points(box):
    import itertools

    return itertools.product(*[range(lo, hi + 1) for lo, hi in box])
