"""Tests for polyhedral AST generation."""


from repro.codegen.ast import generate_ast
from repro.core.compiler import AkgOptions, build
from repro.ir import lower, ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.sched.deps import compute_dependences
from repro.sched.scheduler import PolyScheduler


def ast_text(out, **opts):
    result = build(out, "k", options=AkgOptions(**opts))
    return generate_ast(result.tree, result.kernel.statements).render()


class TestAstGeneration:
    def test_elementwise_loops(self):
        x = placeholder((8, 16), name="X")
        text = ast_text(ops.relu(x, name="R"))
        assert text.count("for (") >= 2
        assert "R[" in text

    def test_tile_band_renders_tile_loops(self):
        x = placeholder((32, 32), name="X")
        result = build(
            ops.relu(x, name="R"), "k", options=AkgOptions(tile_sizes=[8, 8])
        )
        text = generate_ast(result.tree, result.kernel.statements).render()
        assert "tile x8" in text

    def test_skipped_subtree_omitted(self):
        """Post-tiling fusion marks the original producer subtree skipped;
        the AST must not contain it twice."""
        a = placeholder((14,), name="A")
        pre = ops.scalar_add(a, 1.0, name="PRE")
        k = reduce_axis((0, 3), "k")
        c = compute((12,), lambda i: te_sum(pre[i + k], axis=k), name="C")
        result = build(c, "k", options=AkgOptions(tile_sizes=[4]))
        text = generate_ast(result.tree, result.kernel.statements).render()
        # The producer *write* appears exactly once (inside the extension);
        # the original subtree is marked skipped and omitted.
        writes = [ln for ln in text.splitlines() if "PRE[" in ln and "=" in ln and "add(A" in ln]
        assert len(writes) == 1
        assert "extension" in text

    def test_sequence_order_preserved(self):
        x = placeholder((8,), name="X")
        b = ops.scalar_add(x, 1.0, name="B")
        c = ops.relu(b, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        tree = PolyScheduler().initial_tree(kernel)
        text = generate_ast(tree, kernel.statements).render()
        assert text.index("B[") < text.index("C[")

    def test_reduction_body_rendered(self):
        a = placeholder((4, 6), name="A")
        b = placeholder((6, 3), name="B")
        mm = ops.matmul(a, b, name="MM")
        kernel = lower(mm)
        deps = compute_dependences(kernel)
        tree = PolyScheduler().schedule_kernel(kernel, deps)
        text = generate_ast(tree, kernel.statements).render()
        assert "MM[" in text
        assert "mul(" in text  # the accumulation expression
