"""Tests for the functional program replayer (compiled-order semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.program_exec import TraceMissingError, execute_program
from repro.core.compiler import AkgOptions, build
from repro.ir import ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.runtime.reference import evaluate_tensors


def rand(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestReplayBasics:
    def test_missing_trace_raises(self):
        x = placeholder((4,), name="X")
        r = ops.relu(x, name="R")
        result = build(r, "k")  # no emit_trace
        with pytest.raises(TraceMissingError):
            execute_program(result.program, {"X": rand((4,), 1)})

    def test_missing_input_raises(self):
        x = placeholder((4,), name="X")
        r = ops.relu(x, name="R")
        result = build(r, "k", options=AkgOptions(emit_trace=True))
        with pytest.raises(KeyError):
            result.execute({})

    def test_shape_mismatch_raises(self):
        x = placeholder((4,), name="X")
        r = ops.relu(x, name="R")
        result = build(r, "k", options=AkgOptions(emit_trace=True))
        with pytest.raises(ValueError):
            result.execute({"X": rand((5,), 1)})

    def test_multi_output_kernel(self):
        x = placeholder((4, 8), name="X")
        a = ops.relu(x, name="A")
        b = ops.abs_op(x, name="B")
        result = build([a, b], "k", options=AkgOptions(emit_trace=True))
        xv = rand((4, 8), 2)
        out = result.execute({"X": xv})
        np.testing.assert_allclose(out["A"], np.maximum(xv, 0), rtol=1e-5)
        np.testing.assert_allclose(out["B"], np.abs(xv), rtol=1e-5)


class TestOverlappedRecompute:
    def test_overlapped_producer_executes_once_per_instance(self):
        """The replay must honour the no-redundant-computation guarantee:
        with an accumulating producer, double execution would corrupt the
        result, so matching the reference proves single execution."""
        a = placeholder((12,), name="A")
        pre = ops.scalar_add(a, 1.0, name="PRE")
        k = reduce_axis((0, 3), "k")
        c = compute(
            (10,), lambda i: te_sum(pre[i + k], axis=k), name="C"
        )
        result = build(c, "k", options=AkgOptions(emit_trace=True, tile_sizes=[4]))
        xv = rand((12,), 3)
        ref = evaluate_tensors(c, {"A": xv})["C"]
        got = result.execute({"A": xv})["C"]
        np.testing.assert_allclose(got, ref, rtol=1e-5)
        # The producer is genuinely fused (overlapping tiles exist).
        group = result.groups[-1]
        assert group.fused_producer_ids == ["S0"]
        assert group.total_tiles >= 2


@settings(max_examples=8, deadline=None)
@given(
    rows=st.integers(3, 10),
    cols=st.integers(3, 10),
    tile_r=st.integers(1, 6),
    tile_c=st.integers(1, 6),
    seed=st.integers(0, 99),
)
def test_any_tiling_preserves_semantics(rows, cols, tile_r, tile_c, seed):
    """Property: whatever (legal) tile sizes are forced, the compiled
    program computes the same function."""
    x = placeholder((rows, cols), name="X")
    out = ops.relu(ops.scalar_mul(x, -1.5, name="S"), name="OUT")
    result = build(
        out,
        "k",
        options=AkgOptions(emit_trace=True, tile_sizes=[tile_r, tile_c]),
    )
    xv = rand((rows, cols), seed)
    got = result.execute({"X": xv})["OUT"]
    np.testing.assert_allclose(got, np.maximum(xv * -1.5, 0), rtol=1e-5)


@settings(max_examples=6, deadline=None)
@given(
    rows=st.integers(3, 10),
    cols=st.integers(3, 10),
    tile_r=st.integers(1, 6),
    tile_c=st.integers(1, 6),
    seed=st.integers(0, 99),
)
def test_any_tiling_engines_bit_identical(rows, cols, tile_r, tile_c, seed):
    """Property: scalar and vectorized replay agree exactly (not just
    allclose) for arbitrary legal tilings."""
    x = placeholder((rows, cols), name="X")
    out = ops.relu(ops.scalar_mul(x, -1.5, name="S"), name="OUT")
    result = build(
        out,
        "k",
        options=AkgOptions(emit_trace=True, tile_sizes=[tile_r, tile_c]),
    )
    xv = rand((rows, cols), seed)
    scalar = result.execute({"X": xv}, engine="scalar")["OUT"]
    vectorized = result.execute({"X": xv}, engine="vectorized")["OUT"]
    assert np.array_equal(scalar, vectorized)
