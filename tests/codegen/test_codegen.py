"""Tests for vectorisation analysis, sync policies and program building."""

import pytest

from repro.codegen.sync import Stage, link_stages, merge_adjacent_stages, count_sync_instrs
from repro.codegen.vectorize import (
    arithmetic_op_count,
    full_tile_fraction,
    innermost_run_elems,
    is_access_aligned,
    vector_op_kinds,
)
from repro.hw.isa import Barrier, Pipe, ScalarInstr, SetFlag, VectorInstr, WaitFlag
from repro.ir import lower, ops
from repro.ir.tensor import placeholder


class TestVectorize:
    def test_op_count_simple(self):
        x = placeholder((8,), name="X")
        r = ops.relu(x, name="R")
        stmt = lower(r).statements[0]
        assert arithmetic_op_count(stmt.expr) == 1

    def test_op_count_compound(self):
        x = placeholder((8,), name="X")
        y = placeholder((8,), name="Y")
        from repro.ir.tensor import compute

        t = compute((8,), lambda i: (x[i] + y[i]) * 2.0 + 1.0, name="T")
        stmt = lower(t).statements[0]
        assert arithmetic_op_count(stmt.expr) == 3  # add, mul, add

    def test_vector_op_kinds(self):
        x = placeholder((8,), name="X")
        s = ops.sigmoid(x, name="S")
        stmt = lower(s).statements[0]
        assert vector_op_kinds(stmt.expr) == ["sigmoid"]

    def test_innermost_run(self):
        x = placeholder((8, 16), name="X")
        r = ops.relu(x, name="R")
        stmt = lower(r).statements[0]
        assert innermost_run_elems(stmt, [8, 16]) == 16

    def test_alignment(self):
        x = placeholder((8, 16), name="X")
        r = ops.relu(x, name="R")
        stmt = lower(r).statements[0]
        assert is_access_aligned(stmt, [8, 16], 2)  # 32 B rows
        assert not is_access_aligned(stmt, [8, 15], 2)  # 30 B rows

    def test_full_tile_fraction(self):
        assert full_tile_fraction([64, 64], [32, 32]) == 1.0
        frac = full_tile_fraction([10, 10], [4, 4])
        # 3 tiles per dim, 2 full per dim: (2/3)^2.
        assert abs(frac - 4 / 9) < 1e-9


class TestSyncPolicies:
    def chain(self):
        return [
            Stage(Pipe.MTE2, [ScalarInstr(1, "a")], "in"),
            Stage(Pipe.MTE2, [ScalarInstr(1, "b")], "in2"),
            Stage(Pipe.V, [VectorInstr("add", 128, "fp16")], "compute"),
            Stage(Pipe.MTE3, [ScalarInstr(1, "c")], "out"),
        ]

    def test_merge_adjacent(self):
        merged = merge_adjacent_stages(self.chain())
        assert [s.pipe for s in merged] == [Pipe.MTE2, Pipe.V, Pipe.MTE3]
        assert len(merged[0].instrs) == 2

    def test_dp_minimal_flags(self):
        out = link_stages(self.chain(), "dp")
        # Two pipe boundaries -> exactly two set/wait pairs.
        assert count_sync_instrs(out) == 4

    def test_empirical_more_flags_than_dp(self):
        dp = count_sync_instrs(link_stages(self.chain(), "dp"))
        emp = count_sync_instrs(link_stages(self.chain(), "empirical"))
        assert emp > dp

    def test_naive_uses_barriers(self):
        out = link_stages(self.chain(), "naive")
        assert any(isinstance(i, Barrier) for i in out)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            link_stages(self.chain(), "magic")

    def test_dp_order_preserved(self):
        out = link_stages(self.chain(), "dp")
        labels = [i.label for i in out if isinstance(i, ScalarInstr)]
        assert labels == ["a", "b", "c"]

    def test_set_before_wait(self):
        out = link_stages(self.chain(), "dp")
        for i, instr in enumerate(out):
            if isinstance(instr, WaitFlag):
                # The matching set appears earlier with the same event.
                assert any(
                    isinstance(p, SetFlag) and p.event == instr.event
                    for p in out[:i]
                )


class TestProgramBuilder:
    def test_relu_program_shape(self):
        from repro.core.compiler import build

        x = placeholder((64, 128), dtype="fp16", name="X")
        r = ops.relu(x, name="R")
        result = build(r, "relu")
        text = result.program.dump()
        assert "dma GM->UB" in text
        assert "vrelu" in text
        assert "dma UB->GM" in text

    def test_matmul_program_has_cube_path(self):
        from repro.core.compiler import build

        a = placeholder((64, 64), dtype="fp16", name="A")
        b = placeholder((64, 64), dtype="fp16", name="B")
        mm = ops.matmul(a, b, name="MM")
        text = build(mm, "mm").program.dump()
        assert "mmad" in text
        assert "L0B" in text
        assert "L0C->UB" in text

    def test_conv_program_has_img2col(self):
        from repro.core.compiler import build

        d = placeholder((1, 8, 12, 12), dtype="fp16", name="D")
        w = placeholder((8, 8, 3, 3), dtype="fp16", name="W")
        cv = ops.conv2d(d, w, padding=(1, 1), name="CV")
        text = build(cv, "cv").program.dump()
        assert "img2col" in text

    def test_double_buffer_toggle_changes_cycles(self):
        from repro.core.compiler import AkgOptions, build

        x = placeholder((512, 512), dtype="fp16", name="X")
        r = ops.relu(x, name="R")
        with_db = build(r, "r", options=AkgOptions(double_buffer=True)).cycles()
        without = build(r, "r", options=AkgOptions(double_buffer=False)).cycles()
        assert with_db < without

    def test_sync_policy_changes_sync_count(self):
        from repro.core.compiler import AkgOptions, build

        x = placeholder((512, 512), dtype="fp16", name="X")
        r = ops.sigmoid(ops.relu(x, name="R"), name="S")
        dp = build(r, "r", options=AkgOptions(sync_policy="dp")).simulate()
        emp = build(r, "r", options=AkgOptions(sync_policy="empirical")).simulate()
        assert emp.sync_count >= dp.sync_count


class TestCceEmission:
    def test_emit_cce_contains_intrinsics(self):
        from repro.core.compiler import build

        a = placeholder((32, 32), dtype="fp16", name="A")
        b = placeholder((32, 32), dtype="fp16", name="B")
        mm = ops.matmul(a, b, name="MM")
        code = build(mm, "mm").cce_code()
        assert "copy_gm_to_cbuf" in code
        assert "mad(" in code
        assert "__cbuf__" in code
        assert "set_flag" in code

    def test_emit_cce_vector_kernel(self):
        from repro.core.compiler import build

        x = placeholder((64, 64), dtype="fp16", name="X")
        r = ops.relu(x, name="R")
        code = build(r, "relu").cce_code()
        assert "vrelu" in code
        assert "copy_ubuf_to_gm" in code

    def test_ast_generation_for_tiled_tree(self):
        from repro.codegen.ast import generate_ast
        from repro.core.compiler import build

        x = placeholder((64, 64), dtype="fp16", name="X")
        r = ops.relu(x, name="R")
        result = build(r, "relu")
        ast = generate_ast(result.tree, result.kernel.statements)
        text = ast.render()
        assert "for (" in text
