"""Property-based end-to-end tests over randomly generated kernels.

Hypothesis builds random element-wise DAGs (with optional stencil and
reduction nodes); for every sample the full AKG pipeline must (a) produce
a schedule the independent legality checker accepts and (b) compute the
same function as the reference executor.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import AkgOptions, build
from repro.ir import lower, ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.runtime.reference import evaluate_tensors
from repro.sched.deps import compute_dependences
from repro.sched.scheduler import PolyScheduler, check_legality

UNARY = ["relu", "abs", "sigmoid", "tanh"]
BINARY = ["add", "mul", "sub", "max"]


@st.composite
def random_dag(draw):
    rows = draw(st.integers(3, 8))
    cols = draw(st.integers(3, 8))
    x = placeholder((rows, cols), name="X")
    y = placeholder((rows, cols), name="Y")
    nodes = [x, y]
    n_ops = draw(st.integers(1, 6))
    for i in range(n_ops):
        kind = draw(st.sampled_from(["unary", "binary", "scalar"]))
        a = draw(st.sampled_from(nodes))
        if kind == "unary":
            op = draw(st.sampled_from(UNARY))
            t = ops.elementwise_unary(a, op, name=f"n{i}")
        elif kind == "binary":
            b = draw(st.sampled_from(nodes))
            op = draw(st.sampled_from(BINARY))
            t = ops.elementwise_binary(a, b, op, name=f"n{i}")
        else:
            t = ops.scalar_add(a, draw(st.floats(-2, 2)), name=f"n{i}")
        nodes.append(t)
    out = nodes[-1]
    if out.is_placeholder:
        out = ops.relu(x, name="fallback")
    seed = draw(st.integers(0, 1000))
    return out, (rows, cols), seed


@settings(max_examples=15, deadline=None)
@given(sample=random_dag())
def test_random_elementwise_dag_matches_reference(sample):
    out, shape, seed = sample
    rng = np.random.default_rng(seed)
    inputs = {
        "X": rng.standard_normal(shape).astype(np.float32),
        "Y": rng.standard_normal(shape).astype(np.float32),
    }
    ref = evaluate_tensors(out, inputs)[out.name]
    result = build(out, "prop", options=AkgOptions(emit_trace=True))
    got = result.execute(inputs)[out.name]
    np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-5)


@settings(max_examples=10, deadline=None)
@given(sample=random_dag())
def test_random_dag_schedules_are_legal(sample):
    out, _, _ = sample
    kernel = lower(out)
    deps = compute_dependences(kernel)
    tree = PolyScheduler().schedule_kernel(kernel, deps)
    assert not check_legality(tree, deps)


@settings(max_examples=8, deadline=None)
@given(
    size=st.integers(6, 14),
    halo=st.integers(1, 3),
    tile=st.integers(2, 6),
    seed=st.integers(0, 100),
)
def test_random_stencil_fusion_matches_reference(size, halo, tile, seed):
    """Stencil chains with arbitrary halo and tile sizes stay correct
    through overlapped post-tiling fusion."""
    a = placeholder((size,), name="A")
    pre = ops.scalar_add(a, 0.5, name="PRE")
    k = reduce_axis((0, halo + 1), "k")
    out_len = size - halo
    c = compute((out_len,), lambda i: te_sum(pre[i + k], axis=k), name="C")
    rng = np.random.default_rng(seed)
    xv = rng.standard_normal((size,)).astype(np.float32)
    ref = evaluate_tensors(c, {"A": xv})["C"]
    result = build(
        c, "stencil", options=AkgOptions(emit_trace=True, tile_sizes=[tile])
    )
    got = result.execute({"A": xv})["C"]
    np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-5)
