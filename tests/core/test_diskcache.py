"""The persistent compilation cache: store semantics and end-to-end reuse.

Covers the three layers separately:

- :class:`~repro.core.diskcache.DiskCache` itself (round trips, corrupt
  entries, eviction, kill switches);
- the fingerprints (identity-independence, sensitivity to every semantic
  attribute);
- the wiring (warm ``run_frontend``/``build`` hit the cache and return
  byte-identical programs; the tuner replays measurements and converges
  on the same best sizes).
"""

import os
import pickle

import numpy as np
import pytest

from repro.core import diskcache
from repro.core.compiler import AkgOptions, build
from repro.core.frontend import FrontEnd, run_frontend
from repro.ir import ops
from repro.ir.tensor import placeholder


def _relu_kernel(shape=(16, 24)):
    x = placeholder(shape, dtype="fp16", name="X")
    return ops.relu(x, name="out")


def _matmul_kernel(m=12, k=10, n=8):
    a = placeholder((m, k), dtype="fp16", name="A")
    b = placeholder((k, n), dtype="fp16", name="B")
    return ops.matmul(a, b, name="out")


class TestDiskCacheStore:
    def test_round_trip(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "round-trip")
        assert cache.get(key) is None
        assert cache.put(key, {"payload": [1, 2, 3]})
        assert cache.get(key) == {"payload": [1, 2, 3]}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["entries"] == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "corrupt")
        cache.put(key, "fine")
        path = cache._path(key)
        with open(path, "wb") as fh:
            fh.write(b"\x80\x05 this is not a pickle")
        assert cache.get(key) is None
        assert not os.path.exists(path)
        assert cache.errors == 1
        # The next put/get pair works again.
        cache.put(key, "fine again")
        assert cache.get(key) == "fine again"

    def test_truncated_entry_tolerated(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "truncated")
        cache.put(key, list(range(1000)))
        path = cache._path(key)
        with open(path, "rb") as fh:
            head = fh.read(10)
        with open(path, "wb") as fh:
            fh.write(head)
        assert cache.get(key) is None

    def test_unpicklable_value_degrades_to_not_cached(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "unpicklable")
        assert not cache.put(key, lambda: None)
        assert cache.get(key) is None

    def test_eviction_bounds_entry_count(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"), max_entries=3)
        keys = [diskcache.digest("unit", f"evict-{i}") for i in range(6)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert len(cache) <= 3
        assert cache.evictions >= 3

    def test_clear(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        for i in range(4):
            cache.put(diskcache.digest("unit", f"clear-{i}"), i)
        cache.clear()
        assert len(cache) == 0


class TestConcurrentWriters:
    def test_racing_same_key_writers_leave_a_verifiable_entry(self, tmp_path):
        """N threads race put() on one key: whichever whole entry wins the
        ``os.replace`` must pass the sha256 header check — interleaved
        bytes would fail ``_decode`` and count as a corruption."""
        import threading

        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "writer-race")
        threads = 8
        rounds = 25
        barrier = threading.Barrier(threads)
        failures = []

        def writer(tid):
            # Distinct payloads (and sizes) per writer make byte
            # interleaving detectable.
            value = {"writer": tid, "blob": bytes([tid]) * (1000 + tid * 97)}
            barrier.wait()
            for _ in range(rounds):
                if not cache.put(key, value):
                    failures.append(tid)

        pool = [
            threading.Thread(target=writer, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        assert not failures
        survivor = cache.get(key)
        assert survivor is not None
        tid = survivor["writer"]
        assert survivor["blob"] == bytes([tid]) * (1000 + tid * 97)
        assert cache.corruptions == 0
        assert cache.errors == 0
        assert cache.stats()["stores"] == threads * rounds
        # No temp-file debris left behind by the rename dance.
        shard = os.path.dirname(cache._path(key))
        assert [n for n in os.listdir(shard) if n.endswith(".tmp")] == []

    def test_racing_distinct_keys_all_land(self, tmp_path):
        import threading

        cache = diskcache.DiskCache(str(tmp_path / "c"))
        keys = [diskcache.digest("unit", f"k{i}") for i in range(32)]
        barrier = threading.Barrier(4)

        def writer(chunk):
            barrier.wait()
            for key in chunk:
                cache.put(key, key)

        pool = [
            threading.Thread(target=writer, args=(keys[i::4],))
            for i in range(4)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        for key in keys:
            assert cache.get(key) == key
        assert cache.corruptions == 0


class TestKillSwitches:
    def test_env_disable(self, monkeypatch):
        key = diskcache.digest("unit", "env-disable")
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        assert not diskcache.enabled()
        assert not diskcache.store(key, "x")
        assert diskcache.load(key) is None
        assert diskcache.disk_cache_stats() == {
            "hits": 0, "misses": 0, "stores": 0, "evictions": 0,
            "errors": 0, "corruptions": 0, "entries": 0, "hit_rate": 0.0,
            "enabled": False,
        }
        monkeypatch.delenv("REPRO_NO_DISK_CACHE")
        assert diskcache.enabled()

    def test_programmatic_disable_and_context(self):
        key = diskcache.digest("unit", "prog-disable")
        diskcache.set_disk_cache_enabled(False)
        try:
            assert not diskcache.enabled()
        finally:
            diskcache.set_disk_cache_enabled(True)
        with diskcache.disabled():
            assert not diskcache.enabled()
            assert not diskcache.store(key, "x")
        assert diskcache.enabled()

    def test_cache_dir_override_rebinds(self, tmp_path):
        diskcache.set_cache_dir(str(tmp_path / "override"))
        try:
            assert diskcache.get_cache().root == str(tmp_path / "override")
            key = diskcache.digest("unit", "override")
            diskcache.store(key, 42)
            assert diskcache.load(key) == 42
        finally:
            diskcache.set_cache_dir(None)
        assert diskcache.get_cache().root != str(tmp_path / "override")

    def test_none_key_is_never_cached(self):
        assert diskcache.load(None) is None
        assert not diskcache.store(None, "x")


class TestFingerprints:
    def test_identity_independent(self):
        # Two structurally identical DAGs built separately (fresh Python
        # objects, fresh auto-named axes) fingerprint identically.
        assert diskcache.ir_fingerprint(_matmul_kernel()) == (
            diskcache.ir_fingerprint(_matmul_kernel())
        )

    def test_sensitive_to_shape_dtype_and_op(self):
        base = diskcache.ir_fingerprint(_relu_kernel((16, 24)))
        assert diskcache.ir_fingerprint(_relu_kernel((16, 25))) != base
        x32 = placeholder((16, 24), dtype="fp32", name="X")
        assert diskcache.ir_fingerprint(ops.relu(x32, name="out")) != base
        x = placeholder((16, 24), dtype="fp16", name="X")
        assert diskcache.ir_fingerprint(ops.abs_op(x, name="out")) != base

    def test_digest_changes_with_parts(self):
        assert diskcache.digest("a") != diskcache.digest("b")
        assert diskcache.digest("a", "b") != diskcache.digest("ab")

    def test_stable_value_rejects_exotic_types(self):
        with pytest.raises(diskcache.FingerprintError):
            diskcache._stable_value(object())

    def test_options_fingerprint_distinguishes_tile_sizes(self):
        a = diskcache.options_fingerprint(AkgOptions(tile_sizes=[8, 8]))
        b = diskcache.options_fingerprint(AkgOptions(tile_sizes=[8, 16]))
        assert a != b


class TestCompilationReuse:
    def test_frontend_warm_hit(self):
        diskcache.reset_disk_cache_stats()
        fe1 = run_frontend(_matmul_kernel(), "reuse")
        assert fe1.cache_key is not None
        stats = diskcache.disk_cache_stats()
        assert stats["stores"] >= 1 and stats["hits"] == 0
        fe2 = run_frontend(_matmul_kernel(), "reuse")
        assert fe2 is not fe1  # unpickled, not the same object
        assert fe2.cache_key == fe1.cache_key
        assert diskcache.disk_cache_stats()["hits"] >= 1
        assert fe2.extents == fe1.extents
        assert len(fe2.deps) == len(fe1.deps)

    def test_build_warm_dump_is_byte_identical(self):
        cold = build(_matmul_kernel(), "dump")
        warm = build(_matmul_kernel(), "dump")
        with diskcache.disabled():
            nocache = build(_matmul_kernel(), "dump")
        assert cold.program.dump() == warm.program.dump()
        assert cold.program.dump() == nocache.program.dump()
        assert cold.tile_sizes == warm.tile_sizes == nocache.tile_sizes
        assert cold.cycles() == warm.cycles() == nocache.cycles()

    def test_warm_result_executes_correctly(self):
        """The unpickled program replays: PolyStatement.var_names (an
        ``id()``-keyed map in the live process) survives the round trip."""
        rng = np.random.default_rng(0)
        a = rng.standard_normal((12, 10)).astype(np.float32)
        b = rng.standard_normal((10, 8)).astype(np.float32)
        opts = AkgOptions(emit_trace=True)
        cold = build(_matmul_kernel(), "exec", options=opts)
        warm = build(_matmul_kernel(), "exec", options=opts)
        got_cold = cold.execute({"A": a, "B": b})["out"]
        got_warm = warm.execute({"A": a, "B": b})["out"]
        np.testing.assert_allclose(got_warm, got_cold, rtol=1e-5)
        np.testing.assert_allclose(got_warm, a @ b, rtol=1e-2, atol=1e-2)

    def test_frontend_pickle_round_trip_directly(self):
        fe = run_frontend(_matmul_kernel(), "pickle")
        clone = pickle.loads(pickle.dumps(fe))
        assert isinstance(clone, FrontEnd)
        assert clone.extents == fe.extents
        # var_names must come back as a usable id-keyed map.
        for stmt, cstmt in zip(fe.kernel.statements, clone.kernel.statements):
            assert sorted(stmt.var_names.values()) == (
                sorted(cstmt.var_names.values())
            )

    def test_different_options_do_not_collide(self):
        fused = build(_matmul_kernel(), "opt")
        manual = build(
            _matmul_kernel(), "opt", options=AkgOptions(tile_sizes=[4, 4])
        )
        assert manual.tile_sizes == [4, 4]
        assert fused.tile_sizes != manual.tile_sizes or (
            fused.program.dump() == manual.program.dump()
        )

    def test_tuner_warm_agrees_with_cold(self):
        from repro.autotune.tuner import tune_tile_sizes

        params = dict(first_round=4, round_size=2, max_rounds=1, seed=3)
        best_cold, hist_cold = tune_tile_sizes(
            _matmul_kernel(), "tune", **params
        )
        diskcache.reset_disk_cache_stats()
        best_warm, hist_warm = tune_tile_sizes(
            _matmul_kernel(), "tune", **params
        )
        assert best_warm == best_cold
        assert len(hist_warm) == len(hist_cold)
        assert [r.cycles for r in hist_warm] == [r.cycles for r in hist_cold]
        # The warm run replayed measurements from the persistent cache.
        assert diskcache.disk_cache_stats()["hits"] >= len(hist_cold)
        with diskcache.disabled():
            best_nocache, hist_nocache = tune_tile_sizes(
                _matmul_kernel(), "tune", **params
            )
        assert best_nocache == best_cold
        assert len(hist_nocache) == len(hist_cold)
