"""The typed error taxonomy: hierarchy, context rendering, exit codes."""

import pytest

from repro.core.errors import (
    EXIT_CODES,
    CacheCorruptionError,
    CodegenError,
    ExecutionFallbackError,
    FusionError,
    NetworkPlanError,
    QuarantinedError,
    ReproError,
    SchedulingError,
    ServiceError,
    ServiceOverloadError,
    SolverBudgetError,
    StageTimeoutError,
    TilingError,
    VerificationError,
    error_classes,
    exit_code_for,
)

ALL_CLASSES = (
    ReproError,
    SolverBudgetError,
    StageTimeoutError,
    SchedulingError,
    TilingError,
    FusionError,
    CodegenError,
    CacheCorruptionError,
    ExecutionFallbackError,
    NetworkPlanError,
    ServiceError,
    ServiceOverloadError,
    QuarantinedError,
    VerificationError,
)


class TestHierarchy:
    def test_every_class_is_a_repro_and_runtime_error(self):
        # RuntimeError compatibility keeps pre-taxonomy catch sites (the
        # tuner's measurement loop) working unchanged.
        for klass in ALL_CLASSES:
            assert issubclass(klass, ReproError)
            assert issubclass(klass, RuntimeError)

    def test_catching_the_base_catches_every_subclass(self):
        for klass in ALL_CLASSES:
            with pytest.raises(ReproError):
                raise klass("boom")

    def test_error_classes_map_is_complete(self):
        assert set(error_classes()) == {k.__name__ for k in ALL_CLASSES}
        assert error_classes()["TilingError"] is TilingError

    def test_every_class_has_actionable_guidance(self):
        for klass in ALL_CLASSES:
            assert isinstance(klass.action, str) and klass.action


class TestContext:
    def test_str_without_context_is_just_the_message(self):
        assert str(ReproError("plain failure")) == "plain failure"
        assert ReproError("plain failure").context() == ""

    def test_str_appends_stage_kernel_elapsed(self):
        exc = SolverBudgetError(
            "node budget exhausted",
            stage="frontend.schedule",
            kernel="matmul",
            elapsed=1.25,
        )
        assert str(exc) == (
            "node budget exhausted "
            "[stage=frontend.schedule, kernel=matmul, elapsed=1.250s]"
        )

    def test_partial_context(self):
        exc = TilingError("no fit", stage="backend.tile_fit")
        assert "stage=backend.tile_fit" in str(exc)
        assert "kernel=" not in str(exc)
        assert exc.elapsed is None

    def test_attributes_survive(self):
        exc = StageTimeoutError("late", stage="s", kernel="k", elapsed=2.0)
        assert (exc.message, exc.stage, exc.kernel, exc.elapsed) == (
            "late", "s", "k", 2.0
        )


class TestExitCodes:
    def test_codes_are_distinct_and_documented(self):
        codes = list(EXIT_CODES.values())
        assert len(codes) == len(set(codes))
        assert 0 not in codes and 1 not in codes  # reserved

    def test_most_derived_class_wins(self):
        assert exit_code_for(SolverBudgetError("x")) == 3
        assert exit_code_for(StageTimeoutError("x")) == 4
        assert exit_code_for(ReproError("x")) == 2

    def test_subclass_outside_the_table_inherits_its_parent_code(self):
        from repro.runtime.vectorized import Unvectorizable

        assert exit_code_for(Unvectorizable("op")) == (
            EXIT_CODES[ExecutionFallbackError]
        )

    def test_untyped_errors_map_to_one(self):
        assert exit_code_for(ValueError("x")) == 1
        assert exit_code_for(RuntimeError("x")) == 1
