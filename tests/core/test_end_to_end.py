"""End-to-end integration tests: compile, simulate and verify numerics.

Every compiler path's functional replay must match the reference
executor -- the strongest check the repository has, exercising lowering,
scheduling, tiling, post-tiling fusion, storage and code generation
together.
"""

import numpy as np

from repro.core.compiler import AkgOptions, build
from repro.ir import ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.runtime.reference import evaluate_tensors
from repro.tvmbaseline.compiler import tvm_build


def rand(shape, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(dtype)


def check_akg(outputs, inputs, out_name, rtol=1e-4, atol=1e-5, **opt_kw):
    ref = evaluate_tensors(outputs, inputs)[out_name]
    result = build(outputs, "k", options=AkgOptions(emit_trace=True, **opt_kw))
    got = result.execute(inputs)[out_name]
    np.testing.assert_allclose(got, ref, rtol=rtol, atol=atol)
    assert result.cycles() > 0
    return result


class TestAkgNumerics:
    def test_elementwise_chain(self):
        a = placeholder((24, 17), name="A")
        out = ops.relu(ops.scalar_add(a, 1.0, name="B"), name="C")
        check_akg(out, {"A": rand((24, 17), 1)}, "C")

    def test_running_example(self):
        a = placeholder((14, 14), name="A")
        a1 = ops.scalar_add(a, 1.0, name="A1")
        b = placeholder((3, 3), name="B")
        kh = reduce_axis((0, 3), "kh")
        kw = reduce_axis((0, 3), "kw")
        c = compute(
            (12, 12),
            lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
            name="C",
        )
        out = ops.relu(ops.abs_op(c, name="C1"), name="C2")
        result = check_akg(
            out, {"A": rand((14, 14), 2), "B": rand((3, 3), 3)}, "C2"
        )
        # The bias-add producer fused via an extension node.
        main = result.groups[-1]
        assert main.fused_producer_ids

    def test_matmul(self):
        a = placeholder((12, 20), name="A")
        b = placeholder((20, 9), name="B")
        mm = ops.matmul(a, b, name="MM")
        check_akg(mm, {"A": rand((12, 20), 4), "B": rand((20, 9), 5)}, "MM")

    def test_conv2d_with_padding(self):
        d = placeholder((2, 3, 9, 9), name="D")
        w = placeholder((4, 3, 3, 3), name="W")
        cv = ops.conv2d(d, w, stride=(2, 2), padding=(1, 1), name="CV")
        check_akg(cv, {"D": rand((2, 3, 9, 9), 6), "W": rand((4, 3, 3, 3), 7)}, "CV")

    def test_transposed_consumer(self):
        a = placeholder((10, 6), name="A")
        r = ops.relu(a, name="R")
        t = ops.transpose(r, (1, 0), name="T")
        check_akg(t, {"A": rand((10, 6), 8)}, "T")

    def test_batch_norm_update(self):
        x = placeholder((2, 3, 6, 6), name="X")
        mean = placeholder((3,), name="M")
        var = placeholder((3,), name="V")
        g = placeholder((3,), name="G")
        bta = placeholder((3,), name="BT")
        out = ops.batch_norm_update(x, mean, var, g, bta, name="BN")
        xv = rand((2, 3, 6, 6), 9)
        check_akg(
            out,
            {
                "X": xv,
                "M": xv.mean(axis=(0, 2, 3)),
                "V": xv.var(axis=(0, 2, 3)),
                "G": rand((3,), 10),
                "BT": rand((3,), 11),
            },
            "BN",
        )

    def test_reduction_to_vector(self):
        x = placeholder((6, 20), name="X")
        k = reduce_axis((0, 20), "k")
        s = compute((6,), lambda i: te_sum(x[i, k], axis=k), name="S")
        out = ops.scalar_mul(s, 0.05, name="MEAN")
        check_akg(out, {"X": rand((6, 20), 12)}, "MEAN")

    def test_softmax(self):
        x = placeholder((5, 11), name="X")
        sm = ops.softmax_last_axis(x, name="SM")
        check_akg(sm, {"X": rand((5, 11), 13)}, "SM", rtol=1e-4)

    def test_fusionless_ablation_still_correct(self):
        a = placeholder((14, 14), name="A")
        a1 = ops.scalar_add(a, 1.0, name="A1")
        b = placeholder((3, 3), name="B")
        kh = reduce_axis((0, 3), "kh")
        kw = reduce_axis((0, 3), "kw")
        c = compute(
            (12, 12),
            lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
            name="C",
        )
        check_akg(
            c,
            {"A": rand((14, 14), 14), "B": rand((3, 3), 15)},
            "C",
            post_tiling_fusion=False,
        )

    def test_manual_tiling_policy(self):
        x = placeholder((32, 32), name="X")
        r = ops.relu(x, name="R")
        result = build(
            r,
            "manual",
            options=AkgOptions(tile_policy="S_0: 8@UB, 16@UB", emit_trace=True),
        )
        assert result.tile_sizes == [8, 16]
        got = result.execute({"X": rand((32, 32), 16)})["R"]
        np.testing.assert_allclose(
            got, np.maximum(rand((32, 32), 16), 0), rtol=1e-5
        )

    def test_depthwise_conv(self):
        x = placeholder((2, 3, 8, 8), name="X")
        w = placeholder((3, 3, 3), name="W")
        out = ops.depthwise_conv2d(x, w, padding=(1, 1), name="DW")
        check_akg(out, {"X": rand((2, 3, 8, 8), 17), "W": rand((3, 3, 3), 18)}, "DW")

    def test_pooling(self):
        x = placeholder((1, 2, 8, 8), name="X")
        out = ops.max_pool2d(x, (2, 2), name="MP")
        check_akg(out, {"X": rand((1, 2, 8, 8), 19)}, "MP")


class TestTvmBaselineNumerics:
    def test_elementwise(self):
        a = placeholder((16, 16), name="A")
        out = ops.relu(ops.scalar_mul(a, 2.0, name="B"), name="C")
        xa = rand((16, 16), 20)
        ref = evaluate_tensors(out, {"A": xa})["C"]
        got = tvm_build(out, "t", emit_trace=True).execute({"A": xa})["C"]
        np.testing.assert_allclose(got, ref, rtol=1e-5)

    def test_matmul(self):
        a = placeholder((8, 12), name="A")
        b = placeholder((12, 10), name="B")
        mm = ops.matmul(a, b, name="MM")
        xa, xb = rand((8, 12), 21), rand((12, 10), 22)
        ref = evaluate_tensors(mm, {"A": xa, "B": xb})["MM"]
        got = tvm_build(mm, "t", emit_trace=True).execute({"A": xa, "B": xb})["MM"]
        np.testing.assert_allclose(got, ref, rtol=1e-4)

    def test_stencil_chain_splits_kernels(self):
        """TVM cannot fuse the stencil producer: two tile nests."""
        a = placeholder((14, 14), name="A")
        a1 = ops.scalar_add(a, 1.0, name="A1")
        kh = reduce_axis((0, 3), "kh")
        kw = reduce_axis((0, 3), "kw")
        b = placeholder((3, 3), name="B")
        c = compute(
            (12, 12),
            lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
            name="C",
        )
        result = tvm_build(c, "t")
        assert len(result.groups) == 2
        # The AKG path fuses the same pattern into one nest.
        akg = build(c, "a")
        assert len(akg.groups) == 1


class TestPerformanceShape:
    """Relative-performance invariants the paper's figures rely on."""

    def test_fusion_beats_no_fusion_on_stencil_chain(self):
        a = placeholder((128, 128), dtype="fp16", name="A")
        a1 = ops.scalar_add(a, 1.0, name="A1")
        kh = reduce_axis((0, 3), "kh")
        kw = reduce_axis((0, 3), "kw")
        b = placeholder((3, 3), dtype="fp16", name="B")
        c = compute(
            (126, 126),
            lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
            name="C",
        )
        out = ops.relu(c, name="OUT")
        fused = build(out, "f").cycles()
        unfused = build(
            out, "u", options=AkgOptions(post_tiling_fusion=False)
        ).cycles()
        assert fused < unfused

    def test_akg_beats_tvm_on_rich_stencil_chain(self):
        """A subgraph1-style chain: a stencil inside a multi-op vector
        chain with a residual.  TVM must split at the stencil (two GM
        round trips of every intermediate); AKG fuses everything -- this
        is where the paper's subgraph1/subgraph5 wins come from."""
        x = placeholder((8, 8, 128, 128), dtype="fp16", name="X")
        w = placeholder((8, 3, 3), dtype="fp16", name="W")
        a = ops.scalar_add(x, 0.5, name="pre")
        d = ops.depthwise_conv2d(a, w, padding=(1, 1), name="dw")
        b = ops.abs_op(d, name="abs")
        r = ops.relu(b, name="relu")
        s = ops.add(r, x, name="res")
        out = ops.scalar_mul(s, 0.9, name="out")
        akg = build(out, "a").cycles()
        tvm = tvm_build(out, "t").cycles()
        assert akg < tvm

    def test_dp_sync_never_worse_than_empirical(self):
        a = placeholder((256, 256), dtype="fp16", name="A")
        b = placeholder((256, 256), dtype="fp16", name="B")
        mm = ops.matmul(a, b, name="MM")
        dp = build(mm, "d", options=AkgOptions(sync_policy="dp")).cycles()
        emp = build(mm, "e", options=AkgOptions(sync_policy="empirical")).cycles()
        assert dp <= emp
