"""Injected cache corruption: detection, deletion, recompilation.

The harness's ``diskcache.read:corrupt`` / ``:truncate`` directives
mangle the *real* entry bytes on disk right before the read, so these
tests exercise the production integrity check (magic + sha256 header),
not a simulated one.
"""

import os

import numpy as np

from repro.core import diskcache
from repro.core.compiler import AkgOptions, build
from repro.core.frontend import run_frontend
from repro.ir import ops
from repro.ir.tensor import placeholder
from repro.tools import faultinject


def _matmul():
    a = placeholder((12, 10), dtype="fp32", name="A")
    b = placeholder((10, 8), dtype="fp32", name="B")
    return ops.matmul(a, b, name="out")


class TestEntryMangling:
    def test_corrupt_entry_detected_deleted_and_recompiled(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "injected-corrupt")
        cache.put(key, {"schedule": list(range(64))})
        path = cache._path(key)

        with faultinject.inject("diskcache.read:corrupt"):
            assert cache.get(key) is None  # a miss, not a crash
        assert not os.path.exists(path)  # poisoned entry removed
        stats = cache.stats()
        assert stats["corruptions"] == 1
        assert stats["errors"] == 1

        # The slot is usable again immediately.
        cache.put(key, "healthy")
        assert cache.get(key) == "healthy"

    def test_truncated_entry_detected_and_removed(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "injected-truncate")
        cache.put(key, list(range(1000)))
        path = cache._path(key)
        healthy_size = os.path.getsize(path)

        with faultinject.inject("diskcache.read:truncate"):
            assert cache.get(key) is None
        assert not os.path.exists(path)
        assert cache.stats()["corruptions"] == 1
        assert healthy_size > 0

    def test_single_bit_flip_is_caught_by_the_checksum(self, tmp_path):
        # Directly flip one payload byte (no harness): the sha256 header
        # must catch what magic-number checks alone would let through.
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "bit-flip")
        cache.put(key, {"x": 1})
        path = cache._path(key)
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        blob[-1] ^= 0x01
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert cache.get(key) is None
        assert cache.stats()["corruptions"] == 1

    def test_mangling_fires_only_under_injection(self, tmp_path):
        cache = diskcache.DiskCache(str(tmp_path / "c"))
        key = diskcache.digest("unit", "no-spec")
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert cache.stats()["corruptions"] == 0


class TestPipelineRecovery:
    def test_warm_frontend_recompiles_through_corruption(self):
        fe_cold = run_frontend(_matmul(), "faulted")
        assert fe_cold.cache_key is not None
        diskcache.reset_disk_cache_stats()

        with faultinject.inject("diskcache.read:corrupt#once"):
            fe_warm = run_frontend(_matmul(), "faulted")

        # Recompiled from scratch (the mangled entry could not be a hit)
        # and semantically identical to the cold result -- not stale, not
        # a crash.
        assert diskcache.disk_cache_stats()["corruptions"] >= 1
        assert fe_warm.extents == fe_cold.extents
        assert len(fe_warm.deps) == len(fe_cold.deps)

        # The recompile re-stored the entry; a healthy read now hits.
        diskcache.reset_disk_cache_stats()
        fe_again = run_frontend(_matmul(), "faulted")
        assert diskcache.disk_cache_stats()["hits"] >= 1
        assert fe_again.extents == fe_cold.extents

    def test_corrupted_warm_build_matches_cold_program_exactly(self):
        opts = AkgOptions(emit_trace=True)
        cold = build(_matmul(), "faulted_build", options=opts)
        with faultinject.inject("diskcache.read:corrupt"):
            warm = build(_matmul(), "faulted_build", options=opts)
        assert warm.program.dump() == cold.program.dump()
        assert warm.tile_sizes == cold.tile_sizes

        rng = np.random.default_rng(0)
        inputs = {
            "A": rng.standard_normal((12, 10)).astype(np.float32),
            "B": rng.standard_normal((10, 8)).astype(np.float32),
        }
        np.testing.assert_array_equal(
            warm.execute(inputs)["out"], cold.execute(inputs)["out"]
        )

    def test_recovery_is_reported_as_an_event_not_degradation(self):
        run_frontend(_matmul(), "faulted_report")
        from repro.core import resilience

        with faultinject.inject("diskcache.read:corrupt#once"):
            with resilience.collect() as report:
                run_frontend(_matmul(), "faulted_report")
        kinds = [e["kind"] for e in report.events]
        assert "recovered" in kinds
        assert not report.degraded  # recovery is not a fallback rung

    def test_error_mode_read_fault_does_not_crash_the_build(self):
        # ``diskcache.read:error`` raises CacheCorruptionError out of the
        # directive call itself; the cache layer must absorb it as a miss.
        run_frontend(_matmul(), "faulted_error_mode")
        with faultinject.inject("diskcache.read:error#once"):
            fe = run_frontend(_matmul(), "faulted_error_mode")
        assert fe.extents
