"""Budgets, deadlines, reports and the degradation ladder."""

import pytest

from repro.core import resilience
from repro.core.errors import ReproError, StageTimeoutError, TilingError
from repro.core.resilience import (
    ResilienceReport,
    StageBudget,
    with_fallback,
)


@pytest.fixture(autouse=True)
def _clean_counters():
    resilience.reset_resilience_stats()
    yield
    resilience.reset_resilience_stats()


class TestStageScopes:
    def test_no_scope_no_stage(self):
        assert resilience.active_stage() is None
        resilience.check_deadline()  # no-op, must not raise

    def test_nesting_and_unwind(self):
        with resilience.stage_scope("outer"):
            assert resilience.active_stage() == "outer"
            with resilience.stage_scope("inner"):
                assert resilience.active_stage() == "inner"
            assert resilience.active_stage() == "outer"
        assert resilience.active_stage() is None

    def test_unbudgeted_scope_never_times_out(self):
        with resilience.stage_scope("free"):
            resilience.check_deadline()

    def test_expired_deadline_raises_typed(self):
        with resilience.stage_scope("s", StageBudget(stage_seconds=30.0)):
            assert resilience.backdate_deadline()
            with pytest.raises(StageTimeoutError) as info:
                resilience.check_deadline()
        assert info.value.stage == "s"
        assert info.value.elapsed is not None

    def test_inner_scope_cannot_outlive_outer_deadline(self):
        # check_deadline walks every enclosing frame: a fresh ladder-rung
        # scope does not shield code from the parent stage's deadline.
        with resilience.stage_scope("outer", StageBudget(stage_seconds=30.0)):
            assert resilience.backdate_deadline()
            with resilience.stage_scope("outer[fallback]"):
                with pytest.raises(StageTimeoutError):
                    resilience.check_deadline()

    def test_budget_inheritance(self):
        budget = StageBudget(solver_nodes=123, fm_constraints=456)
        assert resilience.solver_node_budget(999) == 999
        with resilience.stage_scope("outer", budget):
            # budget=None inherits the innermost active budget
            with resilience.stage_scope("inner"):
                assert resilience.solver_node_budget(999) == 123
                assert resilience.fm_constraint_budget(999) == 456
        assert resilience.fm_constraint_budget(999) == 999

    def test_backdate_without_deadline_returns_false(self):
        with resilience.stage_scope("free"):
            assert not resilience.backdate_deadline()

    def test_budget_fingerprint_is_stable(self):
        a = StageBudget(stage_seconds=1.0, solver_nodes=2)
        b = StageBudget(stage_seconds=1.0, solver_nodes=2)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != StageBudget().fingerprint()


class TestReports:
    def test_collect_records_events(self):
        with resilience.collect() as report:
            resilience.note_event("x", "fallback", fallback="plan-b")
        assert report.events == [
            {"stage": "x", "kind": "fallback", "fallback": "plan-b"}
        ]
        assert report.degraded
        assert report.summary() == ["x: fallback -> plan-b"]

    def test_nested_collect_shares_the_outer_report(self):
        with resilience.collect() as outer:
            with resilience.collect() as inner:
                assert inner is outer
                resilience.note_event("y", "recovered")
        assert outer.events[0]["kind"] == "recovered"
        assert not outer.degraded  # recoveries are not degradation

    def test_dedupe_suppresses_report_floods_not_counters(self):
        with resilience.collect() as report:
            for _ in range(5):
                resilience.note_event(
                    "exec", "fallback", fallback="scalar", dedupe=True
                )
        assert len(report.events) == 1
        assert resilience.resilience_stats()["exec.fallback:scalar"] == 5

    def test_events_without_active_report_still_count(self):
        resilience.note_event("z", "fallback", fallback="f")
        assert resilience.resilience_stats()["z.fallback:f"] == 1

    def test_report_is_picklable(self):
        import pickle

        report = ResilienceReport()
        report.add("s", "gave_up", error="TilingError")
        clone = pickle.loads(pickle.dumps(report))
        assert clone.events == report.events and clone.degraded


class TestLadder:
    def test_primary_success_records_nothing(self):
        with resilience.collect() as report:
            out = with_fallback("s", ("primary", lambda: 42))
        assert out == 42
        assert report.events == []

    def test_typed_failure_steps_down(self):
        def bad():
            raise TilingError("no fit")

        with resilience.collect() as report:
            out = with_fallback(
                "s", ("auto", bad), ("static", lambda: "fallback-value")
            )
        assert out == "fallback-value"
        [event] = report.events
        assert event["kind"] == "fallback"
        assert event["fallback"] == "static"
        assert event["error"] == "TilingError"

    def test_untyped_failure_propagates_immediately(self):
        def bug():
            raise IndexError("genuine bug")

        with pytest.raises(IndexError), resilience.collect():
            with_fallback("s", ("auto", bug), ("static", lambda: 1))

    def test_all_rungs_fail_reraises_last_typed_error(self):
        def bad_a():
            raise TilingError("a")

        def bad_b():
            raise ReproError("b")

        with resilience.collect() as report:
            with pytest.raises(ReproError, match="b"):
                with_fallback("s", ("a", bad_a), ("b", bad_b))
        assert report.events[-1]["kind"] == "gave_up"
        assert report.degraded

    def test_fallback_rung_gets_a_fresh_deadline(self):
        seen = []

        def bad():
            raise ReproError("burn the budget")

        def probe():
            seen.append(resilience.active_stage())
            resilience.check_deadline()  # fresh deadline: must not raise
            return "ok"

        with resilience.stage_scope("s", StageBudget(stage_seconds=30.0)):
            resilience.backdate_deadline()  # primary "used up" the stage
            # The outer deadline is expired, so the rung's own scope alone
            # cannot save it -- with_fallback gives the rung a fresh scope
            # but check_deadline still sees the parent.  Re-arm the parent
            # to model the real pattern (the primary raised *before* the
            # deadline passed).
            resilience._stage_frames()[-1][1] = None
            out = with_fallback("s", ("p", bad), ("q", probe))
        assert out == "ok"
        assert seen == ["s[q]"]
