"""Regression tests: the staged pipeline must equal the monolithic one.

``build`` is now the composition of :func:`repro.core.frontend.run_frontend`
and :func:`repro.core.compiler.backend_build`.  These tests pin the
contract that made the split safe:

- reusing one ``FrontEnd`` across many backend builds yields the same
  ``Program`` text and cycle count as a fresh monolithic ``build`` at the
  same tile sizes (for representative kernel shapes: elementwise chain,
  GEMM, conv, and a reduction);
- the serial and parallel auto-tuner return identical best sizes *and*
  identical histories for a fixed seed;
- a ``FrontEnd`` survives pickling (the parallel tuner's transport).
"""

import pickle

import pytest

from repro.core.compiler import AkgOptions, backend_build, build
from repro.core.frontend import run_frontend
from repro.ir import ops
from repro.ir.tensor import placeholder


def _elementwise_chain():
    x = placeholder((32, 128), "fp16", name="X")
    y = placeholder((32, 128), "fp16", name="Y")
    return ops.relu(ops.add(x, y, name="s"), name="out")


def _gemm():
    a = placeholder((64, 64), "fp16", name="A")
    b = placeholder((64, 64), "fp16", name="B")
    return ops.matmul(a, b, name="out")


def _conv():
    d = placeholder((1, 8, 16, 16), "fp16", name="D")
    w = placeholder((8, 8, 3, 3), "fp16", name="W")
    return ops.conv2d(d, w, stride=(1, 1), padding=(1, 1), name="out")


def _softmax():
    x = placeholder((16, 64), "fp16", name="X")
    return ops.softmax_last_axis(x, name="out")


KERNELS = {
    "elementwise": (_elementwise_chain, [[8, 64], [16, 128], [32, 32]]),
    "gemm": (_gemm, [[16, 64], [32, 32], [64, 16]]),
    "conv": (_conv, [[1, 8, 8, 16], [1, 4, 16, 16]]),
    "softmax": (_softmax, [[8, 64], [16, 32]]),
}


class TestStagedEqualsMonolithic:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_same_program_and_cycles_at_fixed_sizes(self, name):
        builder, size_lists = KERNELS[name]
        frontend = run_frontend(builder(), name)
        for sizes in size_lists:
            staged = backend_build(frontend, AkgOptions(tile_sizes=sizes))
            mono = build(builder(), name, options=AkgOptions(tile_sizes=sizes))
            assert staged.program.dump() == mono.program.dump()
            assert staged.cycles() == mono.cycles()
            assert staged.tile_sizes == mono.tile_sizes

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_auto_tiling_path_matches(self, name):
        """Default options (Auto Tiling) through both entry points."""
        builder, _ = KERNELS[name]
        frontend = run_frontend(builder(), name)
        staged = backend_build(frontend)
        mono = build(builder(), name)
        assert staged.tile_sizes == mono.tile_sizes
        assert staged.program.dump() == mono.program.dump()
        assert staged.cycles() == mono.cycles()

    def test_frontend_reuse_is_stateless(self):
        """Backend builds must not corrupt the shared front-end."""
        frontend = run_frontend(_gemm(), "gemm")
        first = backend_build(frontend, AkgOptions(tile_sizes=[16, 64]))
        for sizes in ([64, 16], [8, 8], [32, 64]):
            backend_build(frontend, AkgOptions(tile_sizes=sizes))
        again = backend_build(frontend, AkgOptions(tile_sizes=[16, 64]))
        assert again.program.dump() == first.program.dump()

    def test_frontend_is_picklable(self):
        frontend = run_frontend(_conv(), "conv")
        clone = pickle.loads(pickle.dumps(frontend))
        sizes = [1, 4, 16, 16]
        a = backend_build(frontend, AkgOptions(tile_sizes=sizes))
        b = backend_build(clone, AkgOptions(tile_sizes=sizes))
        assert a.program.dump() == b.program.dump()


class TestTunerEquivalence:
    def test_serial_and_parallel_tuner_agree(self):
        from repro.autotune.tuner import tune_tile_sizes

        kwargs = dict(seed=3, first_round=6, round_size=3, max_rounds=2)
        best_s, hist_s = tune_tile_sizes(_gemm(), "gemm", **kwargs)
        best_p, hist_p = tune_tile_sizes(
            _gemm(), "gemm", parallel=True, workers=2, **kwargs
        )
        assert best_s == best_p
        assert [(r.sizes, r.cycles) for r in hist_s] == [
            (r.sizes, r.cycles) for r in hist_p
        ]

    def test_tuned_best_reproduces_through_plain_build(self):
        """The tuner's winning sizes give the same cycles via plain build."""
        from repro.autotune.tuner import tune_tile_sizes

        best, history = tune_tile_sizes(
            _elementwise_chain(), "ew", seed=1,
            first_round=6, round_size=3, max_rounds=1,
        )
        best_cycles = min(r.cycles for r in history)
        rebuilt = build(
            _elementwise_chain(), "ew", options=AkgOptions(tile_sizes=best)
        )
        assert float(rebuilt.cycles()) == best_cycles
