"""Shape-generic compilation: symbolic dims end to end.

One compile per *shape class* (op graph + symbolic leading dim with a
declared max) serves every batch size in ``[1, max]``: lowering records
the symbolic identity, the parametric legality proof decides
shape-generic vs concretize-at-upper-bound, the disk-cache fingerprint
buckets all batch sizes of a class together, and replay binds the
concrete dim from the input arrays and clamps the tile boxes.
"""

import numpy as np
import pytest

import repro.core.compiler  # noqa: F401  (core first: import-order cycle)
from repro.core import diskcache
from repro.core.compiler import AkgOptions, build
from repro.hw.spec import HardwareSpec
from repro.ir import ops
from repro.ir.lower import lower
from repro.ir.tensor import SymDim, placeholder, reduce_axis
from repro.runtime.reference import evaluate_kernel, infer_bindings
from repro.service import CompileService, ServiceRequest
from repro.service.wire import demo_kernel
from repro.tiling.auto import AutoTiler


def _sym_relu(batch_max=8, cols=24):
    x = placeholder((SymDim("N", batch_max), cols), "fp16", name="X")
    return ops.relu(x, name="out")


def _concrete_relu(batch, cols=24):
    x = placeholder((batch, cols), "fp16", name="X")
    return ops.relu(x, name="out")


class TestLowering:
    def test_sym_dims_recorded_on_kernel(self):
        kernel = lower(_sym_relu(batch_max=8), "sym_lower")
        assert kernel.sym_dims == {"N": 8}
        x = next(t for t in kernel.inputs if t.name == "X")
        assert x.shape[0] == 8  # concrete view is the declared max
        assert x.sym_axes[0].name == "N"

    def test_reduce_axis_rejects_symbolic_bounds(self):
        with pytest.raises(ValueError):
            reduce_axis((0, SymDim("K", 16)))

    def test_symdim_validates(self):
        with pytest.raises(ValueError):
            SymDim("N", 0)
        with pytest.raises(ValueError):
            SymDim("", 4)


class TestLegality:
    def test_batch_pointwise_proves_generic(self):
        res = build(_sym_relu(), "sg_legal", options=AkgOptions(emit_trace=True))
        assert res.kernel.shape_generic
        assert not any(
            e["stage"] == "frontend.shape_generic" for e in res.resilience.events
        )

    def test_reduction_over_sym_dim_concretizes(self):
        # batch_norm_reduce reduces *over* the leading dim: the structural
        # gate must refuse and fall back to concretize-at-upper-bound,
        # with an explaining event that does not mark the build degraded.
        x = placeholder((SymDim("N", 8), 4, 3, 3), "fp16", name="X")
        mean, var = ops.batch_norm_reduce(x)
        res = build([mean, var], "sg_bn", options=AkgOptions(emit_trace=True))
        assert not res.kernel.shape_generic
        events = [
            e for e in res.resilience.events
            if e["stage"] == "frontend.shape_generic"
        ]
        assert len(events) == 1
        assert events[0]["kind"] == "concretized"
        assert not res.resilience.degraded


class TestFingerprintBucketing:
    def test_same_class_same_fingerprint(self):
        # Two graphs of the same shape class fingerprint identically —
        # that IS the cache bucketing (graph shape doesn't depend on the
        # requested batch, only on the class).
        fp1 = diskcache.ir_fingerprint(_sym_relu(batch_max=8))
        fp2 = diskcache.ir_fingerprint(_sym_relu(batch_max=8))
        assert fp1 == fp2

    def test_different_max_different_class(self):
        fp8 = diskcache.ir_fingerprint(_sym_relu(batch_max=8))
        fp16 = diskcache.ir_fingerprint(_sym_relu(batch_max=16))
        assert fp8 != fp16

    def test_symbolic_differs_from_concrete_at_max(self):
        # A symbolic kernel replays differently from its concrete-max
        # twin (runtime clamping), so they must not share a cache slot.
        sym = diskcache.ir_fingerprint(_sym_relu(batch_max=8))
        conc = diskcache.ir_fingerprint(_concrete_relu(8))
        assert sym != conc

    def test_second_batch_size_is_a_shapeclass_hit(self):
        diskcache.reset_shapeclass_stats()
        opts = AkgOptions()
        build(demo_kernel("relu", [8, 32], batch_max=8), "sg_hit", options=opts)
        build(demo_kernel("relu", [3, 32], batch_max=8), "sg_hit", options=opts)
        sc = diskcache.shapeclass_stats()
        assert sc["misses"] >= 1
        assert sc["hits"] >= 1


class TestReplayBinding:
    def test_bit_identical_across_bindings_and_engines(self):
        res = build(
            _sym_relu(batch_max=8), "sg_replay",
            options=AkgOptions(emit_trace=True),
        )
        rng = np.random.default_rng(7)
        for b in (1, 3, 8):
            x = rng.standard_normal((b, 24)).astype(np.float16)
            oracle = lower(_concrete_relu(b), "sg_oracle")
            want = evaluate_kernel(oracle, {"X": x}, engine="scalar")["out"]
            for engine in ("scalar", "vectorized"):
                got = res.execute({"X": x}, engine=engine)["out"]
                assert got.shape == (b, 24)
                assert got.dtype == want.dtype
                assert np.array_equal(got, want), (b, engine)

    def test_partial_tiles_clamp(self):
        # matmul over a symbolic M exercises real (non-unit) tile boxes:
        # the clamped schedule must drop/trim tiles past the binding.
        bmax = 16
        a = placeholder((SymDim("M", bmax), 24), "fp16", name="A")
        b_ = placeholder((24, 40), "fp16", name="B")
        res = build(
            ops.matmul(a, b_, name="out"), "sg_mm",
            options=AkgOptions(emit_trace=True),
        )
        assert res.kernel.shape_generic
        rng = np.random.default_rng(11)
        bv = rng.standard_normal((24, 40)).astype(np.float16)
        for m in (1, 5, 16):
            av = rng.standard_normal((m, 24)).astype(np.float16)
            ap = placeholder((m, 24), "fp16", name="A")
            bp = placeholder((24, 40), "fp16", name="B")
            oracle = lower(ops.matmul(ap, bp, name="out"), "sg_mm_oracle")
            want = evaluate_kernel(
                oracle, {"A": av, "B": bv}, engine="scalar"
            )["out"]
            got = res.execute({"A": av, "B": bv})["out"]
            assert got.shape == (m, 40)
            assert np.array_equal(got, want), m

    def test_full_max_shape_inputs_still_accepted(self):
        # Arrays padded to the declared max bind to the max (no slicing
        # surprise): behaviour is the concrete-max kernel's.
        res = build(
            _sym_relu(batch_max=8), "sg_max",
            options=AkgOptions(emit_trace=True),
        )
        x = np.random.default_rng(0).standard_normal((8, 24)).astype(np.float16)
        got = res.execute({"X": x})["out"]
        assert got.shape == (8, 24)

    def test_concretized_kernel_rejects_below_max_binding(self):
        x = placeholder((SymDim("N", 8), 4, 3, 3), "fp16", name="X")
        mean, var = ops.batch_norm_reduce(x)
        res = build(
            [mean, var], "sg_bn_replay", options=AkgOptions(emit_trace=True)
        )
        assert not res.kernel.shape_generic
        small = np.zeros((3, 4, 3, 3), np.float16)
        with pytest.raises(ValueError, match="concretized"):
            res.execute({"X": small})

    def test_inconsistent_bindings_rejected(self):
        lead = SymDim("N", 8)
        a = placeholder((lead, 6), "fp16", name="A")
        b = placeholder((lead, 6), "fp16", name="B")
        kernel = lower(ops.add(a, b, name="out"), "sg_incons")
        with pytest.raises(ValueError, match="inconsistent"):
            infer_bindings(
                kernel,
                {"A": np.zeros((3, 6)), "B": np.zeros((5, 6))},
            )

    def test_out_of_range_binding_rejected(self):
        kernel = lower(_sym_relu(batch_max=8), "sg_range")
        with pytest.raises(ValueError, match=r"\[1, 8\]"):
            infer_bindings(kernel, {"X": np.zeros((9, 24))})


class TestServiceCoalescing:
    def test_batch_sizes_of_one_class_coalesce(self):
        """4 batch sizes, 1 shape class → one backend build."""
        with CompileService(workers=4, autostart=False) as svc:
            tickets = [
                svc.submit(ServiceRequest(
                    "compile",
                    demo_kernel("relu", [b, 32], batch_max=8),
                    name="sg_svc",
                ))
                for b in (1, 3, 5, 8)
            ]
            stats = svc.stats()
            assert stats["inflight"] == 1
            assert stats["coalesced"] == 3
            svc.start()
            results = [t.result(timeout=300) for t in tickets]
        assert all(r.ok for r in results)
        dumps = {r.value["result"].program.dump() for r in results}
        assert len(dumps) == 1

    def test_replay_digests_distinct_per_binding(self):
        r1 = ServiceRequest(
            "replay", demo_kernel("relu", [3, 32], batch_max=8),
            name="sg_rp", seed=2, bindings={"N": 3},
        )
        r2 = ServiceRequest(
            "replay", demo_kernel("relu", [8, 32], batch_max=8),
            name="sg_rp", seed=2, bindings={"N": 8},
        )
        assert r1.coalescing_key() != r2.coalescing_key()

    def test_replay_outputs_bound_shape(self):
        with CompileService(workers=2) as svc:
            served = svc.run(
                ServiceRequest(
                    "replay", demo_kernel("relu", [3, 32], batch_max=8),
                    name="sg_rp_out", seed=5, bindings={"N": 3},
                ),
                timeout=300,
            )
        assert served.ok
        assert served.value["outputs"]["out"].shape == (3, 32)

    def test_stats_expose_shapeclass_counters(self):
        diskcache.reset_shapeclass_stats()
        with CompileService(workers=1) as svc:
            svc.run(
                ServiceRequest(
                    "compile", demo_kernel("relu", [4, 16], batch_max=4),
                    name="sg_stats",
                ),
                timeout=300,
            )
            snap = svc.stats()
        assert "shapeclass" in snap
        assert snap["shapeclass"]["misses"] >= 1


class TestAutoTilerPinning:
    def _evaluator(self, extents):
        from repro.tiling.auto import LinearFootprintEvaluator

        factors = [(d, 1.0, 0.0) for d in range(len(extents))]
        terms = [("UB", 2, list(factors), True) for _ in range(3)]
        return LinearFootprintEvaluator(terms)

    def test_fixed_dim_stays_pinned(self):
        extents = [64, 48]
        tiler = AutoTiler(
            HardwareSpec(), self._evaluator(extents), extents,
            fixed_sizes={0: 1},
        )
        sizes = tiler.search()
        assert sizes[0] == 1  # the pinned (symbolic) dim never moves
        assert sizes[1] >= 1

    def test_fixed_size_clamped_to_extent(self):
        extents = [2, 48]
        tiler = AutoTiler(
            HardwareSpec(), self._evaluator(extents), extents,
            fixed_sizes={0: 4},
        )
        assert tiler.search()[0] == 2
