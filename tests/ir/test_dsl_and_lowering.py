"""Tests for the te DSL, lowering and the reference executor."""

import numpy as np
import pytest

from repro.ir import lower
from repro.ir.expr import IterVar
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.runtime.reference import evaluate_kernel, evaluate_tensors


def rand(shape, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(dtype)


class TestDsl:
    def test_placeholder(self):
        a = placeholder((4, 5), name="A")
        assert a.is_placeholder
        assert a.shape == (4, 5)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            placeholder((4, 0), name="A")

    def test_tensor_ref_rank_check(self):
        a = placeholder((4, 5), name="A")
        with pytest.raises(ValueError):
            _ = a[1]

    def test_compute_creates_axes(self):
        a = placeholder((4, 5), name="A")
        b = compute((4, 5), lambda i, j: a[i, j] + 1, name="B")
        assert not b.is_placeholder
        assert len(b.op.axes) == 2
        assert b.op.axes[0].extent == 4

    def test_reduce_axis_kind(self):
        k = reduce_axis((0, 7), "k")
        assert k.kind == "reduce"
        assert k.extent == 7

    def test_sum_requires_reduce_axis(self):
        data_axis = IterVar("i", 4, kind="data")
        a = placeholder((4,), name="A")
        with pytest.raises(ValueError):
            te_sum(a[data_axis], axis=data_axis)

    def test_ancestors_topological(self):
        a = placeholder((4,), name="A")
        b = compute((4,), lambda i: a[i] + 1, name="B")
        c = compute((4,), lambda i: b[i] * 2, name="C")
        names = [t.name for t in c.ancestors()]
        assert names == ["A", "B", "C"]

    def test_diamond_dag_ancestors_unique(self):
        a = placeholder((4,), name="A")
        b = compute((4,), lambda i: a[i] + 1, name="B")
        c = compute((4,), lambda i: a[i] * 2, name="C")
        d = compute((4,), lambda i: b[i] + c[i], name="D")
        names = [t.name for t in d.ancestors()]
        assert names.count("A") == 1
        assert names[-1] == "D"


class TestLowering:
    def test_elementwise_single_statement(self):
        a = placeholder((4, 5), name="A")
        b = compute((4, 5), lambda i, j: a[i, j] + 1, name="B")
        kernel = lower(b)
        assert len(kernel.statements) == 1
        stmt = kernel.statements[0]
        assert stmt.kind == "compute"
        assert stmt.iter_extents == [4, 5]
        assert stmt.write.is_affine
        assert len(stmt.reads) == 1

    def test_reduction_splits_into_init_and_update(self):
        a = placeholder((4, 6), name="A")
        b = placeholder((6, 3), name="B")
        k = reduce_axis((0, 6), "k")
        c = compute((4, 3), lambda i, j: te_sum(a[i, k] * b[k, j], axis=k), name="C")
        kernel = lower(c)
        kinds = [s.kind for s in kernel.statements]
        assert kinds == ["init", "reduce"]
        init, update = kernel.statements
        assert init.iter_extents == [4, 3]
        assert update.iter_extents == [4, 3, 6]
        assert update.data_rank == 2
        assert update.reduce_iters == ["k"]
        # Self-accumulation read is present.
        assert update.reads[0].tensor is c

    def test_duplicate_reduce_names_uniquified(self):
        a = placeholder((4, 6), name="A")
        k1 = reduce_axis((0, 6), "k")
        s1 = compute((4,), lambda i: te_sum(a[i, k1], axis=k1), name="S1")
        b = placeholder((4, 6), name="B")
        k2 = reduce_axis((0, 6), "k")
        s2 = compute((4,), lambda i: te_sum(b[i, k2] + s1[i], axis=k2), name="S2")
        kernel = lower(s2)
        names = [n for s in kernel.statements for n in s.iter_names]
        assert len(names) == len(set(names))

    def test_intermediates_classified(self):
        a = placeholder((4,), name="A")
        b = compute((4,), lambda i: a[i] + 1, name="B")
        c = compute((4,), lambda i: b[i] * 2, name="C")
        kernel = lower(c)
        assert [t.name for t in kernel.intermediates] == ["B"]
        assert [t.name for t in kernel.outputs] == ["C"]

    def test_access_relation_map(self):
        a = placeholder((8, 8), name="A")
        b = compute((6, 6), lambda i, j: a[i + 2, j] * 2, name="B")
        kernel = lower(b)
        stmt = kernel.statements[0]
        read_map = stmt.read_maps()[0]
        image = read_map.apply(stmt.domain())
        box = image.bounding_box()
        assert box["A_d0"] == (2, 7)
        assert box["A_d1"] == (0, 5)

    def test_non_affine_access_detected(self):
        idx = placeholder((4,), dtype="int32", name="IDX")
        a = placeholder((10,), name="A")
        # Gather: A[IDX[i]] is not affine.
        g = compute((4,), lambda i: a[idx[i]], name="G")
        kernel = lower(g)
        stmt = kernel.statements[0]
        gather_read = [r for r in stmt.reads if r.tensor is a][0]
        assert not gather_read.is_affine
        footprint = gather_read.as_map(stmt.space).apply(stmt.domain())
        assert footprint.bounding_box() == {"A_d0": (0, 9)}


class TestReferenceExecutor:
    def test_elementwise_add(self):
        a = placeholder((4, 5), name="A")
        b = placeholder((4, 5), name="B")
        c = compute((4, 5), lambda i, j: a[i, j] + b[i, j], name="C")
        xa, xb = rand((4, 5), 1), rand((4, 5), 2)
        out = evaluate_tensors(c, {"A": xa, "B": xb})["C"]
        np.testing.assert_allclose(out, xa + xb, rtol=1e-6)

    def test_matmul_matches_numpy(self):
        a = placeholder((5, 7), name="A")
        b = placeholder((7, 3), name="B")
        k = reduce_axis((0, 7), "k")
        c = compute((5, 3), lambda i, j: te_sum(a[i, k] * b[k, j], axis=k), name="C")
        xa, xb = rand((5, 7), 3), rand((7, 3), 4)
        out = evaluate_tensors(c, {"A": xa, "B": xb})["C"]
        np.testing.assert_allclose(out, xa @ xb, rtol=1e-5)

    def test_chained_ops(self):
        a = placeholder((6,), name="A")
        b = compute((6,), lambda i: a[i] * 2, name="B")
        c = compute((6,), lambda i: b[i] + 3, name="C")
        xa = rand((6,), 5)
        out = evaluate_tensors(c, {"A": xa})["C"]
        np.testing.assert_allclose(out, xa * 2 + 3, rtol=1e-6)

    def test_fp16_storage_rounds(self):
        a = placeholder((4,), dtype="fp16", name="A")
        b = compute((4,), lambda i: a[i] + 0.0, name="B", dtype="fp16")
        xa = np.array([1.0002, 2.0, 3.0, 4.0], dtype=np.float16)
        out = evaluate_tensors(b, {"A": xa})["B"]
        assert out.dtype == np.float16

    def test_missing_input_raises(self):
        a = placeholder((4,), name="A")
        b = compute((4,), lambda i: a[i] + 1, name="B")
        kernel = lower(b)
        with pytest.raises(KeyError):
            evaluate_kernel(kernel, {})

    def test_wrong_shape_raises(self):
        a = placeholder((4,), name="A")
        b = compute((4,), lambda i: a[i] + 1, name="B")
        kernel = lower(b)
        with pytest.raises(ValueError):
            evaluate_kernel(kernel, {"A": np.zeros((5,), dtype=np.float32)})
