"""Tests for the imperative statement IR used by the printers."""

from repro.ir.expr import FloatImm, IntImm
from repro.ir.stmt import Block, Evaluate, For, IfThenElse, Provide


class TestRendering:
    def test_for_loop(self):
        body = Provide("A", ["i"], FloatImm(0.0))
        text = For("i", 0, 8, body).render()
        assert "for (i = 0; i < 0 + 8; ++i) {" in text
        assert "A[i] = 0.0;" in text
        assert text.rstrip().endswith("}")

    def test_annotation_comment(self):
        text = For("i", 0, 8, Evaluate("x;"), annotation="vectorized").render()
        assert "// vectorized" in text

    def test_nested_indentation(self):
        inner = For("j", 0, 4, Provide("A", ["i", "j"], IntImm(1)))
        text = For("i", 0, 2, inner).render()
        lines = text.splitlines()
        assert lines[1].startswith("  for (j")
        assert lines[2].startswith("    A[i, j]")

    def test_block_sequences(self):
        text = Block([Evaluate("a;"), Evaluate("b;")]).render()
        assert text.splitlines() == ["a;", "b;"]

    def test_if_then_else(self):
        stmt = IfThenElse("x > 0", Evaluate("t;"), Evaluate("f;"))
        text = stmt.render()
        assert "if (x > 0) {" in text
        assert "} else {" in text

    def test_if_without_else(self):
        text = IfThenElse("x > 0", Evaluate("t;")).render()
        assert "else" not in text
