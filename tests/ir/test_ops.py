"""Tests for the operator library against numpy semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import ops
from repro.ir.tensor import placeholder
from repro.runtime.reference import evaluate_tensors


def rand(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32)


class TestElementwise:
    def test_add(self):
        a, b = placeholder((3, 4), name="A"), placeholder((3, 4), name="B")
        out = ops.add(a, b)
        xa, xb = rand((3, 4), 1), rand((3, 4), 2)
        got = evaluate_tensors(out, {"A": xa, "B": xb})[out.name]
        np.testing.assert_allclose(got, xa + xb, rtol=1e-6)

    def test_add_shape_mismatch(self):
        a, b = placeholder((3, 4), name="A"), placeholder((4, 3), name="B")
        with pytest.raises(ValueError):
            ops.add(a, b)

    def test_relu(self):
        a = placeholder((10,), name="A")
        out = ops.relu(a)
        xa = rand((10,), 3)
        got = evaluate_tensors(out, {"A": xa})[out.name]
        np.testing.assert_allclose(got, np.maximum(xa, 0), rtol=1e-6)

    def test_abs_exp_sigmoid(self):
        a = placeholder((6,), name="A")
        xa = rand((6,), 4)
        for fn, ref in [
            (ops.abs_op, np.abs),
            (ops.exp, np.exp),
            (ops.sigmoid, lambda x: 1 / (1 + np.exp(-x))),
        ]:
            out = fn(a)
            got = evaluate_tensors(out, {"A": xa})[out.name]
            np.testing.assert_allclose(got, ref(xa), rtol=1e-5)

    def test_scalar_ops(self):
        a = placeholder((5,), name="A")
        xa = rand((5,), 5)
        got = evaluate_tensors(ops.scalar_add(a, 2.5, name="SA"), {"A": xa})["SA"]
        np.testing.assert_allclose(got, xa + 2.5, rtol=1e-6)
        got = evaluate_tensors(ops.scalar_mul(a, -3.0, name="SM"), {"A": xa})["SM"]
        np.testing.assert_allclose(got, xa * -3.0, rtol=1e-6)

    def test_cast_fp16(self):
        a = placeholder((4,), name="A")
        out = ops.cast(a, "fp16", name="CAST")
        xa = np.array([1.0002441, 2.5, -3.1, 0.1], dtype=np.float32)
        got = evaluate_tensors(out, {"A": xa})["CAST"]
        assert got.dtype == np.float16
        np.testing.assert_allclose(got, xa.astype(np.float16))


class TestDataMovement:
    def test_transpose(self):
        a = placeholder((3, 4, 5), name="A")
        out = ops.transpose(a, (2, 0, 1), name="T")
        xa = rand((3, 4, 5), 6)
        got = evaluate_tensors(out, {"A": xa})["T"]
        np.testing.assert_allclose(got, np.transpose(xa, (2, 0, 1)))

    def test_transpose_bad_perm(self):
        a = placeholder((3, 4), name="A")
        with pytest.raises(ValueError):
            ops.transpose(a, (0, 0))

    def test_one_hot(self):
        idx = placeholder((4,), dtype="int32", name="IDX")
        out = ops.one_hot(idx, depth=5, name="OH")
        xi = np.array([0, 3, 1, 4], dtype=np.int32)
        got = evaluate_tensors(out, {"IDX": xi})["OH"]
        expected = np.eye(5, dtype=np.float32)[xi]
        np.testing.assert_allclose(got, expected)

    def test_pad2d(self):
        a = placeholder((1, 1, 3, 3), name="A")
        out = ops.pad2d(a, 1, 2, name="P")
        xa = rand((1, 1, 3, 3), 7)
        got = evaluate_tensors(out, {"A": xa})["P"]
        expected = np.pad(xa, ((0, 0), (0, 0), (1, 1), (2, 2)))
        np.testing.assert_allclose(got, expected)

    def test_pad2d_zero_is_identity(self):
        a = placeholder((1, 1, 3, 3), name="A")
        assert ops.pad2d(a, 0, 0) is a


class TestContractions:
    def test_matmul(self):
        a, b = placeholder((4, 6), name="A"), placeholder((6, 5), name="B")
        out = ops.matmul(a, b, name="MM")
        xa, xb = rand((4, 6), 8), rand((6, 5), 9)
        got = evaluate_tensors(out, {"A": xa, "B": xb})["MM"]
        np.testing.assert_allclose(got, xa @ xb, rtol=1e-5)

    def test_matmul_shape_check(self):
        a, b = placeholder((4, 6), name="A"), placeholder((5, 5), name="B")
        with pytest.raises(ValueError):
            ops.matmul(a, b)

    def test_batched_matmul(self):
        a = placeholder((2, 3, 4), name="A")
        b = placeholder((2, 4, 5), name="B")
        out = ops.batched_matmul(a, b, name="BMM")
        xa, xb = rand((2, 3, 4), 10), rand((2, 4, 5), 11)
        got = evaluate_tensors(out, {"A": xa, "B": xb})["BMM"]
        np.testing.assert_allclose(got, xa @ xb, rtol=1e-5)

    def test_conv2d_valid(self):
        data = placeholder((1, 2, 5, 5), name="D")
        weight = placeholder((3, 2, 3, 3), name="W")
        out = ops.conv2d(data, weight, name="CONV")
        assert out.shape == (1, 3, 3, 3)
        xd, xw = rand((1, 2, 5, 5), 12), rand((3, 2, 3, 3), 13)
        got = evaluate_tensors(out, {"D": xd, "W": xw})["CONV"]
        expected = _conv2d_ref(xd, xw, 1, 1, 0, 0)
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)

    def test_conv2d_stride_and_pad(self):
        data = placeholder((1, 1, 6, 6), name="D")
        weight = placeholder((2, 1, 3, 3), name="W")
        out = ops.conv2d(data, weight, stride=(2, 2), padding=(1, 1), name="CONV")
        assert out.shape == (1, 2, 3, 3)
        xd, xw = rand((1, 1, 6, 6), 14), rand((2, 1, 3, 3), 15)
        got = evaluate_tensors(out, {"D": xd, "W": xw})["CONV"]
        expected = _conv2d_ref(xd, xw, 2, 2, 1, 1)
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)

    def test_conv2d_channel_mismatch(self):
        data = placeholder((1, 2, 5, 5), name="D")
        weight = placeholder((3, 4, 3, 3), name="W")
        with pytest.raises(ValueError):
            ops.conv2d(data, weight)


class TestNormalisation:
    def test_batch_norm_reduce(self):
        x = placeholder((2, 3, 4, 4), name="X")
        total, sq = ops.batch_norm_reduce(x, name="BN")
        xx = rand((2, 3, 4, 4), 16)
        got = evaluate_tensors([total, sq], {"X": xx})
        np.testing.assert_allclose(
            got[total.name], xx.sum(axis=(0, 2, 3)), rtol=1e-4
        )
        np.testing.assert_allclose(
            got[sq.name], (xx * xx).sum(axis=(0, 2, 3)), rtol=1e-4
        )

    def test_batch_norm_update(self):
        x = placeholder((2, 3, 4, 4), name="X")
        mean = placeholder((3,), name="MEAN")
        var = placeholder((3,), name="VAR")
        gamma = placeholder((3,), name="G")
        beta = placeholder((3,), name="BETA")
        out = ops.batch_norm_update(x, mean, var, gamma, beta, name="BNU")
        xx = rand((2, 3, 4, 4), 17)
        m = xx.mean(axis=(0, 2, 3))
        v = xx.var(axis=(0, 2, 3))
        g = rand((3,), 18)
        bt = rand((3,), 19)
        got = evaluate_tensors(
            out, {"X": xx, "MEAN": m, "VAR": v, "G": g, "BETA": bt}
        )["BNU"]
        expected = (xx - m[None, :, None, None]) / np.sqrt(
            v[None, :, None, None] + 1e-5
        ) * g[None, :, None, None] + bt[None, :, None, None]
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)

    def test_softmax(self):
        x = placeholder((3, 6), name="X")
        out = ops.softmax_last_axis(x, name="SM")
        xx = rand((3, 6), 20)
        got = evaluate_tensors(out, {"X": xx})["SM"]
        e = np.exp(xx - xx.max(axis=-1, keepdims=True))
        expected = e / e.sum(axis=-1, keepdims=True)
        np.testing.assert_allclose(got, expected, rtol=1e-5)


def _conv2d_ref(data, weight, sh, sw, ph, pw):
    """Direct numpy convolution reference (NCHW / OIHW)."""
    n, c, h, w = data.shape
    co, _, kh, kw = weight.shape
    padded = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, co, ho, wo), dtype=np.float32)
    for nn in range(n):
        for oo in range(co):
            for hh in range(ho):
                for ww in range(wo):
                    patch = padded[
                        nn, :, hh * sh : hh * sh + kh, ww * sw : ww * sw + kw
                    ]
                    out[nn, oo, hh, ww] = (patch * weight[oo]).sum()
    return out


@settings(max_examples=10, deadline=None)
@given(
    m=st.integers(1, 5),
    k=st.integers(1, 5),
    n=st.integers(1, 5),
    seed=st.integers(0, 100),
)
def test_matmul_property(m, k, n, seed):
    """Random-shape matmul always matches numpy."""
    a, b = placeholder((m, k), name="A"), placeholder((k, n), name="B")
    out = ops.matmul(a, b, name="MM")
    xa, xb = rand((m, k), seed), rand((k, n), seed + 1)
    got = evaluate_tensors(out, {"A": xa, "B": xb})["MM"]
    np.testing.assert_allclose(got, xa @ xb, rtol=1e-4, atol=1e-5)
