"""Tests for buffer promotion and footprint computation."""


from repro.fusion.intratile import assign_compute_units
from repro.fusion.posttile import apply_post_tiling_fusion
from repro.hw.spec import HardwareSpec
from repro.ir import lower, ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.sched.clustering import conservative_clustering
from repro.sched.deps import compute_dependences
from repro.sched.scheduler import PolyScheduler
from repro.storage.promote import contiguous_runs, footprint_extents, plan_storage


def fused_group(out, sizes):
    kernel = lower(out)
    deps = compute_dependences(kernel)
    clustering = conservative_clustering(kernel, deps)
    tree = PolyScheduler().schedule_kernel(kernel, deps, clustering)
    fusion = apply_post_tiling_fusion(tree, kernel, deps, clustering, sizes)
    return kernel, fusion.groups[-1]


class TestFootprints:
    def test_elementwise_footprint_equals_tile(self):
        x = placeholder((32, 48), name="X")
        r = ops.relu(x, name="R")
        kernel, group = fused_group(r, [8, 16])
        stmt = group.statements[0]
        read = stmt.reads[0]
        assert footprint_extents(group, stmt, read) == [8, 16]

    def test_stencil_footprint_includes_halo(self):
        a = placeholder((20, 20), name="A")
        kh = reduce_axis((0, 3), "kh")
        kw = reduce_axis((0, 3), "kw")
        c = compute(
            (18, 18),
            lambda h, w: te_sum(a[h + kh, w + kw], axis=(kh, kw)),
            name="C",
        )
        kernel, group = fused_group(c, [6, 6])
        update = next(s for s in group.statements if s.kind == "reduce")
        read = next(r for r in update.reads if r.tensor.name == "A")
        assert footprint_extents(group, update, read) == [8, 8]  # 6 + 3 - 1

    def test_broadcast_footprint_small(self):
        x = placeholder((8, 16, 4, 4), name="X")
        bias = placeholder((16,), name="B")
        out = ops.broadcast_add_channel(x, bias, name="O")
        kernel, group = fused_group(out, [2, 4, 4, 4])
        stmt = group.statements[0]
        read = next(r for r in stmt.reads if r.tensor.name == "B")
        assert footprint_extents(group, stmt, read) == [4]


class TestContiguousRuns:
    def test_full_tensor_single_run(self):
        assert contiguous_runs([4, 8], (4, 8)) == 1

    def test_full_rows_merge(self):
        assert contiguous_runs([4, 8], (16, 8)) == 1

    def test_partial_rows_count(self):
        assert contiguous_runs([4, 4], (16, 8)) == 4

    def test_three_d(self):
        # Innermost full: consecutive middle indices stay contiguous, so
        # each outer slice is one run -> runs = outer extent.
        assert contiguous_runs([2, 3, 8], (4, 6, 8)) == 2

    def test_three_d_partial_inner(self):
        # Partial innermost: every (outer, middle) row is its own run.
        assert contiguous_runs([2, 3, 4], (4, 6, 8)) == 6


class TestStoragePlan:
    def test_local_intermediate_no_gm_traffic(self):
        x = placeholder((32, 32), name="X")
        mid = ops.scalar_add(x, 1.0, name="MID")
        out = ops.relu(mid, name="OUT")
        kernel, group = fused_group(out, [8, 32])
        assignment = assign_compute_units(group.statements)
        plan = plan_storage(group, assignment, kernel, HardwareSpec())
        assert "MID" in plan.local_tensors
        assert all(m.tensor_name != "MID" for m in plan.moves)
        moved = {m.tensor_name for m in plan.moves}
        assert moved == {"X", "OUT"}

    def test_cross_group_intermediate_spills(self):
        """A tensor produced in one nest and consumed in another round-trips
        GM in both plans."""
        a = placeholder((16, 16), name="A")
        r = ops.relu(a, name="R")
        t = ops.transpose(r, (1, 0), name="T")
        g = compute((16, 16), lambda i, j: t[_gather_idx(a, i), j], name="G")
        kernel = lower(g)
        # Build each statement's group manually via the fusionless path.
        from repro.core.compiler import AkgOptions, build

        result = build(g, "k", options=AkgOptions(post_tiling_fusion=False))
        r_plan = next(
            p
            for grp, p in zip(result.groups, result.plans)
            if grp.statements[0].tensor.name == "R"
        )
        assert any(
            m.tensor_name == "R" and m.direction == "out" for m in r_plan.moves
        )

    def test_double_buffer_halves_capacity(self):
        x = placeholder((512, 512), dtype="fp16", name="X")
        r = ops.relu(x, name="R")
        kernel, group = fused_group(r, [512, 512])
        assignment = assign_compute_units(group.statements)
        hw = HardwareSpec()
        plan = plan_storage(group, assignment, kernel, hw, double_buffered=True)
        # 512x512 fp16 x2 tensors = 1 MiB > UB/2: must not fit.
        assert not plan.fits(hw, double_buffered=True)
        assert plan.fits(hw, double_buffered=False) or True  # may still exceed

    def test_cube_operands_get_l0_allocations(self):
        a = placeholder((64, 64), dtype="fp16", name="A")
        b = placeholder((64, 64), dtype="fp16", name="B")
        mm = ops.matmul(a, b, name="MM")
        kernel, group = fused_group(mm, [64, 64])
        assignment = assign_compute_units(group.statements)
        plan = plan_storage(group, assignment, kernel, HardwareSpec())
        scopes = {alloc.scope for alloc in plan.allocations.values()}
        assert {"L0A", "L0B", "L0C"} <= scopes

    def test_reduce_chunking_triggers_for_large_k(self):
        a = placeholder((128, 8192), dtype="fp16", name="A")
        b = placeholder((8192, 128), dtype="fp16", name="B")
        mm = ops.matmul(a, b, name="MM")
        kernel, group = fused_group(mm, [128, 128])
        assignment = assign_compute_units(group.statements)
        plan = plan_storage(group, assignment, kernel, HardwareSpec())
        assert plan.reduce_chunks > 1
        assert any(m.chunked for m in plan.moves)

    def test_peak_live_less_than_sum_for_chain(self):
        x = placeholder((64, 64), name="X")
        t = x
        for i in range(6):
            t = ops.scalar_add(t, 0.1, name=f"c{i}")
        kernel, group = fused_group(t, [64, 64])
        assignment = assign_compute_units(group.statements)
        plan = plan_storage(group, assignment, kernel, HardwareSpec())
        total_local = sum(
            plan.allocations[n].nbytes
            for n in plan.local_tensors
            if n in plan.allocations
        )
        assert 0 < plan.peak_local_bytes < total_local


def _gather_idx(t, i):
    return t[i, 0]
