"""Tests for Fourier-Motzkin elimination."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly.affine import AffineExpr, Constraint, var
from repro.poly.fm import eliminate_variable, project_onto, remove_redundant
from repro.poly.ilp import IlpProblem


def box_constraints(**bounds):
    cons = []
    for name, (lo, hi) in bounds.items():
        cons.append(Constraint.ge(var(name), lo))
        cons.append(Constraint.le(var(name), hi))
    return cons


class TestEliminate:
    def test_box_elimination(self):
        cons = box_constraints(x=(0, 5), y=(2, 7))
        out = eliminate_variable(cons, "y")
        names = {v for c in out for v in c.variables()}
        assert names == {"x"}

    def test_equality_substitution(self):
        # y == 2x, 0 <= y <= 10  ->  0 <= 2x <= 10  ->  0 <= x <= 5.
        cons = box_constraints(y=(0, 10)) + [
            Constraint.eq(var("y"), var("x") * 2)
        ]
        out = eliminate_variable(cons, "y")
        problem = IlpProblem(out)
        assert problem.lexmin(["x"]) == {"x": 0}
        assert problem.lexmax(["x"]) == {"x": 5}

    def test_lower_upper_combination(self):
        # x <= y <= x + 3, 0 <= y <= 10: eliminating y leaves x in [-3, 10].
        cons = [
            Constraint.ge(var("y"), var("x")),
            Constraint.le(var("y"), var("x") + 3),
            Constraint.ge(var("y"), 0),
            Constraint.le(var("y"), 10),
        ]
        out = eliminate_variable(cons, "y")
        problem = IlpProblem(out)
        assert problem.lexmin(["x"]) == {"x": -3}
        assert problem.lexmax(["x"]) == {"x": 10}

    def test_project_onto_multiple(self):
        cons = box_constraints(a=(0, 3), b=(1, 4), c=(2, 5))
        out = project_onto(cons, ["b"])
        names = {v for c in out for v in c.variables()}
        assert names == {"b"}


class TestRedundancy:
    def test_duplicate_removed(self):
        c = Constraint.ge(var("x"), 3)
        out = remove_redundant([c, c, c])
        assert len(out) == 1

    def test_dominated_constant_removed(self):
        weak = Constraint.ge(var("x"), 1)
        strong = Constraint.ge(var("x"), 5)
        out = remove_redundant([weak, strong])
        assert out == [strong]

    def test_trivially_true_dropped(self):
        out = remove_redundant([Constraint.ge(AffineExpr.constant(4), 0)])
        assert out == []


@settings(max_examples=30, deadline=None)
@given(
    lo_x=st.integers(-5, 5), w_x=st.integers(0, 5),
    lo_y=st.integers(-5, 5), w_y=st.integers(0, 5),
    a=st.integers(-2, 2), b=st.integers(1, 3), c=st.integers(-6, 6),
)
def test_projection_is_sound_overapproximation(lo_x, w_x, lo_y, w_y, a, b, c):
    """For every integer point of the original system, its projection must
    satisfy the FM result (soundness: FM over-approximates)."""
    cons = box_constraints(x=(lo_x, lo_x + w_x), y=(lo_y, lo_y + w_y))
    cons.append(Constraint.ge(var("x") * a + var("y") * b, c))
    projected = project_onto(cons, ["x"])
    for x in range(lo_x, lo_x + w_x + 1):
        feasible_y = any(
            a * x + b * y >= c
            for y in range(lo_y, lo_y + w_y + 1)
        )
        if feasible_y:
            env = {"x": x}
            assert all(cc.satisfied(env) for cc in projected)
