"""Fourier-Motzkin elimination with free symbolic parameters.

The parametric legality proof (:func:`repro.sched.deps.
check_parametric_batch_legality`) rests on one property: projecting a
system with free parameters onto a single variable yields an interval
that is a *superset* of the values feasible at every concrete parameter
value.  These tests pin that property directly on
:func:`repro.poly.fm.interval_of` — parametric bounds, contradictory
systems, degenerate (size-1) dims, and an exhaustive cross-check against
concretized solves.
"""

from repro.poly.affine import Constraint, var
from repro.poly.fm import interval_of, project_onto


def _domain(name, param, param_max):
    """0 <= name <= param - 1, 1 <= param <= param_max."""
    return [
        Constraint.ge(var(name), 0),
        Constraint.le(var(name), var(param) - 1),
        Constraint.ge(var(param), 1),
        Constraint.le(var(param), param_max),
    ]


class TestParametricBounds:
    def test_iterator_range_under_free_parameter(self):
        # Eliminating the parameter s (1 <= s <= 8) from 0 <= i <= s-1
        # leaves the worst-case iterator range [0, 7].
        lo, hi = interval_of(_domain("i", "s", 8), "i")
        assert lo == 0
        assert hi == 7

    def test_zero_distance_forced_for_all_parameter_values(self):
        # delta = i' - i with i' == i: the interval must pin delta to 0
        # for *every* value of the free parameter, not just one.
        cons = (
            _domain("i", "s", 16)
            + [
                Constraint.eq(var("ip"), var("i")),
                Constraint.ge(var("ip"), 0),
                Constraint.le(var("ip"), var("s") - 1),
                Constraint.eq(var("delta"), var("ip") - var("i")),
            ]
        )
        assert interval_of(cons, "delta") == (0, 0)

    def test_parameter_dependent_distance_is_not_zero(self):
        # delta = (i + 1) - i = 1: a genuine cross-iteration dependence
        # must survive the projection as a nonzero interval.
        cons = (
            _domain("i", "s", 16)
            + [
                Constraint.eq(var("ip"), var("i") + 1),
                Constraint.eq(var("delta"), var("ip") - var("i")),
            ]
        )
        lo, hi = interval_of(cons, "delta")
        assert lo == 1
        assert hi == 1

    def test_unbounded_direction_is_none(self):
        # Only a lower bound on x: the upper endpoint must be None.
        cons = [Constraint.ge(var("x"), 3)]
        lo, hi = interval_of(cons, "x")
        assert lo == 3
        assert hi is None

    def test_scaled_coefficients(self):
        # 2x >= 3 and 2x <= 7 tighten to the integer interval [2, 3].
        cons = [
            Constraint.ge(var("x") * 2, 3),
            Constraint.le(var("x") * 2, 7),
        ]
        lo, hi = interval_of(cons, "x")
        assert lo == 2
        assert hi == 3


class TestContradictorySystems:
    def test_directly_contradictory(self):
        cons = [
            Constraint.ge(var("x"), 5),
            Constraint.le(var("x"), 2),
        ]
        assert interval_of(cons, "x") is None

    def test_contradiction_through_parameter(self):
        # 0 <= i <= s - 1 with s <= 0 is empty for every i.
        cons = [
            Constraint.ge(var("i"), 0),
            Constraint.le(var("i"), var("s") - 1),
            Constraint.le(var("s"), 0),
        ]
        assert interval_of(cons, "i") is None

    def test_contradictory_equalities(self):
        cons = [
            Constraint.eq(var("x"), 1),
            Constraint.eq(var("x"), 2),
        ]
        assert interval_of(cons, "x") is None


class TestDegenerateDims:
    def test_size_one_dim_pins_iterator_to_zero(self):
        # s == 1: the only iterator value is 0.
        cons = _domain("i", "s", 8) + [Constraint.eq(var("s"), 1)]
        assert interval_of(cons, "i") == (0, 0)

    def test_size_one_dim_zero_distance(self):
        # With s == 1 both endpoints collapse; delta is still exactly 0.
        cons = (
            _domain("i", "s", 8)
            + [
                Constraint.eq(var("s"), 1),
                Constraint.ge(var("ip"), 0),
                Constraint.le(var("ip"), var("s") - 1),
                Constraint.eq(var("delta"), var("ip") - var("i")),
            ]
        )
        assert interval_of(cons, "delta") == (0, 0)


class TestCrossCheckAgainstConcretized:
    """The parametric interval is a superset of every concretized one."""

    def _parametric(self):
        return (
            _domain("i", "s", 8)
            + [
                Constraint.ge(var("ip"), 0),
                Constraint.le(var("ip"), var("s") - 1),
                Constraint.eq(var("delta"), var("ip") - var("i")),
            ]
        )

    def test_superset_of_every_concrete_parameter(self):
        plo, phi = interval_of(self._parametric(), "delta")
        for s in range(1, 9):
            concrete = self._parametric() + [Constraint.eq(var("s"), s)]
            res = interval_of(concrete, "delta")
            assert res is not None
            clo, chi = res
            assert plo <= clo  # parametric lower bound is no tighter
            assert phi >= chi  # parametric upper bound is no tighter
        # And at the maximum parameter the bounds coincide exactly.
        at_max = self._parametric() + [Constraint.eq(var("s"), 8)]
        assert interval_of(at_max, "delta") == (plo, phi)

    def test_projection_matches_concrete_union(self):
        # project_onto the iterator alone: the parametric range equals
        # the union of the concretized ranges (here [0, 7]).
        projected = project_onto(_domain("i", "s", 8), ["i"])
        lo, hi = interval_of(projected, "i")
        concrete_his = []
        for s in range(1, 9):
            cons = _domain("i", "s", 8) + [Constraint.eq(var("s"), s)]
            concrete_his.append(interval_of(cons, "i")[1])
        assert lo == 0
        assert hi == max(concrete_his)
