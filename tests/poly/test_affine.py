"""Unit tests for affine expressions and constraints."""

from fractions import Fraction

import pytest

from repro.poly.affine import AffineExpr, Constraint, aff, var


class TestAffineExpr:
    def test_variable_and_constant(self):
        h = var("h")
        assert h.coeff("h") == 1
        assert h.const == 0
        five = AffineExpr.constant(5)
        assert five.is_constant()
        assert five.const == 5

    def test_addition_merges_coefficients(self):
        e = var("h") + var("w") + var("h") + 3
        assert e.coeff("h") == 2
        assert e.coeff("w") == 1
        assert e.const == 3

    def test_zero_coefficients_dropped(self):
        e = var("h") - var("h")
        assert e.is_constant()
        assert e.variables() == ()

    def test_subtraction_and_negation(self):
        e = 10 - var("x")
        assert e.coeff("x") == -1
        assert e.const == 10
        assert (-e).coeff("x") == 1

    def test_scalar_multiplication(self):
        e = (var("h") + 2) * 3
        assert e.coeff("h") == 3
        assert e.const == 6
        e2 = Fraction(1, 2) * var("h")
        assert e2.coeff("h") == Fraction(1, 2)

    def test_evaluate(self):
        e = aff({"h": 2, "w": -1}, 5)
        assert e.evaluate({"h": 3, "w": 4}) == 7

    def test_substitute_expression(self):
        e = aff({"h": 2}, 1)
        sub = e.substitute({"h": var("a") + var("b")})
        assert sub.coeff("a") == 2
        assert sub.coeff("b") == 2
        assert sub.const == 1

    def test_substitute_number(self):
        e = aff({"h": 2, "w": 1}, 0)
        sub = e.substitute({"h": 5})
        assert sub.coeff("h") == 0
        assert sub.const == 10
        assert sub.coeff("w") == 1

    def test_rename(self):
        e = aff({"h": 1}, 2).rename({"h": "x"})
        assert e.coeff("x") == 1
        assert e.coeff("h") == 0

    def test_equality_and_hash(self):
        a = var("h") + 1
        b = AffineExpr({"h": 1}, 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_is_integral(self):
        assert aff({"h": 2}, 3).is_integral()
        assert not aff({"h": Fraction(1, 2)}, 0).is_integral()


class TestConstraint:
    def test_ge_le_eq_constructors(self):
        c = Constraint.ge(var("h"), 3)
        assert c.satisfied({"h": 3})
        assert not c.satisfied({"h": 2})
        c = Constraint.le(var("h"), 3)
        assert c.satisfied({"h": 3})
        assert not c.satisfied({"h": 4})
        c = Constraint.eq(var("h"), 3)
        assert c.satisfied({"h": 3})
        assert not c.satisfied({"h": 4})

    def test_normalisation_scales_to_coprime(self):
        c = Constraint.ge(var("h") * 4, 8)  # 4h - 8 >= 0 -> h - 2 >= 0
        assert c.expr.coeff("h") == 1
        assert c.expr.const == -2

    def test_normalisation_tightens_inequality_constant(self):
        # 2h - 3 >= 0  over integers is  h >= 2, i.e. h - 2 >= 0.
        c = Constraint.ge(var("h") * 2, 3)
        assert c.expr.coeff("h") == 1
        assert c.expr.const == -2

    def test_equality_not_tightened(self):
        # 2h == 3 has no integer solution but must not be rewritten.
        c = Constraint.eq(var("h") * 2, 3)
        assert c.expr.coeff("h") == 2
        assert c.expr.const == -3

    def test_negate_inequality(self):
        c = Constraint.ge(var("h"), 3).negate()  # h <= 2
        assert c.satisfied({"h": 2})
        assert not c.satisfied({"h": 3})

    def test_negate_equality_raises(self):
        with pytest.raises(ValueError):
            Constraint.eq(var("h"), 3).negate()

    def test_trivial_checks(self):
        assert Constraint.ge(AffineExpr.constant(1), 0).is_trivially_true()
        assert Constraint.ge(AffineExpr.constant(-1), 0).is_trivially_false()
        assert Constraint.eq(AffineExpr.constant(0), 0).is_trivially_true()
        assert Constraint.eq(AffineExpr.constant(2), 0).is_trivially_false()
        assert not Constraint.ge(var("h"), 0).is_trivially_true()

    def test_fractional_input_normalised(self):
        c = Constraint.ge(var("h") * Fraction(1, 2), 1)  # h/2 >= 1 -> h >= 2
        assert c.satisfied({"h": 2})
        assert not c.satisfied({"h": 1})
