"""Unit tests for affine maps (relations)."""

import pytest

from repro.poly.affine import Constraint, var
from repro.poly.maps import BasicMap, Map
from repro.poly.sets import BasicSet, Space


def stencil_map():
    """Access relation S[i] -> A[a] with a in {i, i+1, i+2} (3-point read)."""
    in_space = Space("S", ["i"])
    out_space = Space("A", ["a"])
    cons = [
        Constraint.ge(var("a"), var("i")),
        Constraint.le(var("a"), var("i") + 2),
    ]
    return BasicMap(in_space, out_space, cons)


class TestBasicMap:
    def test_disjoint_dims_enforced(self):
        with pytest.raises(ValueError):
            BasicMap(Space("S", ["i"]), Space("A", ["i"]))

    def test_from_exprs_functional(self):
        m = BasicMap.from_exprs(
            Space("S", ["i", "j"]), Space("A", ["a", "b"]),
            [var("i") + var("j"), var("j") * 2],
        )
        out = m.eval_point({"i": 3, "j": 4})
        assert out == {"a": 7, "b": 8}

    def test_apply_translation(self):
        m = BasicMap.from_exprs(Space("S", ["i"]), Space("A", ["a"]), [var("i") + 5])
        src = BasicSet.from_bounds(Space("S", ["i"]), {"i": (0, 9)})
        img = m.apply(src)
        box = img.bounding_box()
        assert box == {"a": (5, 14)}

    def test_apply_stencil_footprint(self):
        # Reading A[i..i+2] for i in [0, 9] touches A[0..11].
        src = BasicSet.from_bounds(Space("S", ["i"]), {"i": (0, 9)})
        img = stencil_map().apply(src)
        assert img.bounding_box() == {"a": (0, 11)}

    def test_preimage(self):
        tgt = BasicSet.from_bounds(Space("A", ["a"]), {"a": (10, 10)})
        pre = stencil_map().preimage(tgt)
        # i such that [i, i+2] contains 10: i in [8, 10].
        assert pre.bounding_box() == {"i": (8, 10)}

    def test_domain_and_range(self):
        m = stencil_map().intersect_domain(
            BasicSet.from_bounds(Space("S", ["i"]), {"i": (2, 4)})
        )
        assert m.domain().bounding_box() == {"i": (2, 4)}
        assert m.range().bounding_box() == {"a": (2, 6)}

    def test_compose_functional(self):
        # S[i] -> B[b = i*2]; B[b] -> C[c = b + 1]  ==> S[i] -> C[c = 2i+1].
        first = BasicMap.from_exprs(Space("S", ["i"]), Space("B", ["b"]), [var("i") * 2])
        second = BasicMap.from_exprs(Space("B", ["b"]), Space("C", ["c"]), [var("b") + 1])
        comp = first.compose(second)
        assert comp.eval_point({"i": 3}) == {"c": 7}

    def test_compose_arity_mismatch(self):
        first = BasicMap.from_exprs(Space("S", ["i"]), Space("B", ["b"]), [var("i")])
        second = BasicMap.from_exprs(
            Space("B2", ["x", "y"]), Space("C", ["c"]), [var("x") + var("y")]
        )
        with pytest.raises(ValueError):
            first.compose(second)

    def test_reverse(self):
        m = BasicMap.from_exprs(Space("S", ["i"]), Space("A", ["a"]), [var("i") + 1])
        r = m.reverse()
        assert r.eval_point({"a": 5}) == {"i": 4}

    def test_intersect_range(self):
        m = stencil_map().intersect_domain(
            BasicSet.from_bounds(Space("S", ["i"]), {"i": (0, 9)})
        ).intersect_range(BasicSet.from_bounds(Space("A", ["a"]), {"a": (0, 3)}))
        assert m.range().bounding_box() == {"a": (0, 3)}
        assert m.domain().bounding_box() == {"i": (0, 3)}

    def test_wrap(self):
        w = stencil_map().wrap()
        assert set(w.space.dims) == {"i", "a"}
        assert w.contains({"i": 2, "a": 3})
        assert not w.contains({"i": 2, "a": 6})

    def test_is_empty(self):
        m = stencil_map().add_constraints(
            [Constraint.ge(var("a"), var("i") + 5)]
        )
        assert m.is_empty()
        assert not stencil_map().is_empty()


class TestMapUnion:
    def test_union_apply(self):
        left = BasicMap.from_exprs(Space("S", ["i"]), Space("A", ["a"]), [var("i")])
        right = BasicMap.from_exprs(Space("S", ["i"]), Space("A", ["a"]), [var("i") + 100])
        m = left.to_map().union(right)
        src = BasicSet.from_bounds(Space("S", ["i"]), {"i": (0, 1)})
        img = m.apply(src)
        for p in [(0,), (1,), (100,), (101,)]:
            assert img.contains(p)
        assert img.count_points() == 4

    def test_union_domain_range(self):
        left = BasicMap.from_exprs(Space("S", ["i"]), Space("A", ["a"]), [var("i")])
        m = left.to_map()
        dom_box = m.domain()
        assert dom_box.parts  # non-empty union

    def test_empty_map(self):
        m = Map.empty(Space("S", ["i"]), Space("A", ["a"]))
        assert m.is_empty()
        src = BasicSet.from_bounds(Space("S", ["i"]), {"i": (0, 1)})
        assert m.apply(src).is_empty()

    def test_reverse_union(self):
        left = BasicMap.from_exprs(Space("S", ["i"]), Space("A", ["a"]), [var("i") + 1])
        m = left.to_map().reverse()
        img = m.apply(BasicSet.from_bounds(Space("A", ["a"]), {"a": (5, 5)}))
        assert img.contains({"i": 4})
