"""Unit and property tests for integer sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly.affine import AffineExpr, Constraint, var
from repro.poly.sets import BasicSet, Space


def box(name, **bounds):
    space = Space(name, list(bounds))
    return BasicSet.from_bounds(space, bounds)


class TestBasicSet:
    def test_universe_and_empty(self):
        space = Space("S", ["i"])
        assert not BasicSet.universe(space).is_empty()
        assert BasicSet.empty(space).is_empty()

    def test_box_membership(self):
        s = box("S", i=(0, 4), j=(2, 3))
        assert s.contains({"i": 0, "j": 2})
        assert s.contains((4, 3))
        assert not s.contains({"i": 5, "j": 2})
        assert not s.contains({"i": 0, "j": 1})

    def test_from_point(self):
        space = Space("S", ["i", "j"])
        s = BasicSet.from_point(space, (3, -1))
        assert s.contains((3, -1))
        assert not s.contains((3, 0))
        assert s.count_points() == 1

    def test_intersect(self):
        a = box("S", i=(0, 10))
        b = box("S", i=(5, 20))
        inter = a.intersect(b)
        assert inter.dim_min("i") == 5
        assert inter.dim_max("i") == 10

    def test_intersect_space_mismatch(self):
        a = box("S", i=(0, 10))
        b = box("S", j=(0, 10))
        with pytest.raises(ValueError):
            a.intersect(b)

    def test_emptiness_contradiction(self):
        s = box("S", i=(0, 10)).add_constraints(
            [Constraint.ge(var("i"), 11)]
        )
        assert s.is_empty()

    def test_integer_emptiness_of_rational_nonempty(self):
        # 0 <= 2i <= 1 has rational points but no integer interior...
        # 2i == 1 precisely: rationally feasible, integrally empty.
        space = Space("S", ["i"])
        s = BasicSet(space, [Constraint.eq(var("i") * 2, 1)])
        assert s.is_empty()

    def test_dim_bounds(self):
        s = box("S", i=(-3, 7))
        assert s.dim_min("i") == -3
        assert s.dim_max("i") == 7

    def test_bounding_box(self):
        s = box("S", i=(0, 4), j=(1, 2))
        assert s.bounding_box() == {"i": (0, 4), "j": (1, 2)}
        assert BasicSet.empty(Space("S", ["i"])).bounding_box() is None

    def test_lexmin_lexmax(self):
        s = box("S", i=(2, 5), j=(-1, 3))
        assert s.lexmin() == {"i": 2, "j": -1}
        assert s.lexmax() == {"i": 5, "j": 3}

    def test_count_points_triangle(self):
        # i in [0,3], j in [0,3], j <= i  ->  4+3+2+1 = 10 points.
        s = box("S", i=(0, 3), j=(0, 3)).add_constraints(
            [Constraint.le(var("j"), var("i"))]
        )
        assert s.count_points() == 10

    def test_project_out(self):
        s = box("S", i=(0, 3), j=(10, 12))
        p = s.project_out(["j"])
        assert p.space.dims == ("i",)
        assert p.dim_min("i") == 0 and p.dim_max("i") == 3

    def test_project_out_dependent(self):
        # 0 <= i <= 9, j == 2i: projecting j keeps 0 <= i <= 9.
        s = box("S", i=(0, 9), j=(0, 100)).add_constraints(
            [Constraint.eq(var("j"), var("i") * 2)]
        )
        p = s.project_out(["j"])
        assert p.dim_min("i") == 0 and p.dim_max("i") == 9

    def test_symbolic_bounds(self):
        # Triangle: 0 <= i <= 7, i <= j <= 7.
        space = Space("S", ["i", "j"])
        s = BasicSet(
            space,
            [
                Constraint.ge(var("i"), 0),
                Constraint.le(var("i"), 7),
                Constraint.ge(var("j"), var("i")),
                Constraint.le(var("j"), 7),
            ],
        )
        lowers, uppers = s.symbolic_bounds("j", ["i"])
        assert var("i") + 0 in lowers
        assert AffineExpr.constant(7) in uppers

    def test_rename_dims(self):
        s = box("S", i=(0, 3)).rename_dims({"i": "x"})
        assert s.space.dims == ("x",)
        assert s.dim_max("x") == 3

    def test_subset(self):
        small = box("S", i=(2, 3))
        big = box("S", i=(0, 10))
        assert small.is_subset(big)
        assert not big.is_subset(small)


class TestSetUnion:
    def test_union_and_contains(self):
        u = box("S", i=(0, 2)).to_set().union(box("S", i=(10, 12)))
        assert u.contains({"i": 1})
        assert u.contains({"i": 11})
        assert not u.contains({"i": 5})

    def test_union_count(self):
        u = box("S", i=(0, 2)).to_set().union(box("S", i=(1, 4)))
        assert u.count_points() == 5  # overlap deduplicated

    def test_subtract_middle(self):
        whole = box("S", i=(0, 10)).to_set()
        middle = box("S", i=(3, 6)).to_set()
        diff = whole.subtract(middle)
        assert diff.count_points() == 7
        assert diff.contains({"i": 2})
        assert diff.contains({"i": 7})
        assert not diff.contains({"i": 4})

    def test_subtract_everything(self):
        whole = box("S", i=(0, 5)).to_set()
        assert whole.subtract(box("S", i=(-1, 6)).to_set()).is_empty()

    def test_equality(self):
        a = box("S", i=(0, 5)).to_set()
        b = box("S", i=(0, 2)).to_set().union(box("S", i=(3, 5)))
        assert a.is_equal(b)

    def test_coalesce_drops_subsumed(self):
        u = box("S", i=(0, 10)).to_set().union(box("S", i=(2, 3)))
        c = u.coalesce()
        assert len(c.parts) == 1
        assert c.is_equal(u)

    def test_bounding_box_union(self):
        u = box("S", i=(0, 2)).to_set().union(box("S", i=(8, 9)))
        assert u.bounding_box() == {"i": (0, 9)}


@settings(max_examples=30, deadline=None)
@given(
    lo_a=st.integers(-6, 6),
    w_a=st.integers(0, 5),
    lo_b=st.integers(-6, 6),
    w_b=st.integers(0, 5),
)
def test_union_superset_property(lo_a, w_a, lo_b, w_b):
    """S is always a subset of S union T."""
    s = box("S", i=(lo_a, lo_a + w_a))
    t = box("S", i=(lo_b, lo_b + w_b))
    u = s.to_set().union(t)
    assert s.is_subset(u)
    assert t.is_subset(u)


@settings(max_examples=30, deadline=None)
@given(
    lo_a=st.integers(-6, 6),
    w_a=st.integers(0, 5),
    lo_b=st.integers(-6, 6),
    w_b=st.integers(0, 5),
)
def test_subtract_then_union_recovers(lo_a, w_a, lo_b, w_b):
    """(S - T) union (S intersect T) == S, exactly."""
    s = box("S", i=(lo_a, lo_a + w_a)).to_set()
    t = box("S", i=(lo_b, lo_b + w_b)).to_set()
    rebuilt = s.subtract(t).union(s.intersect(t))
    assert rebuilt.is_equal(s)


@settings(max_examples=30, deadline=None)
@given(
    lo_i=st.integers(-4, 4),
    w_i=st.integers(0, 4),
    lo_j=st.integers(-4, 4),
    w_j=st.integers(0, 4),
)
def test_projection_soundness_on_boxes(lo_i, w_i, lo_j, w_j):
    """Projecting a box onto one axis yields exactly that axis interval."""
    s = box("S", i=(lo_i, lo_i + w_i), j=(lo_j, lo_j + w_j))
    p = s.project_out(["j"])
    assert p.dim_min("i") == lo_i
    assert p.dim_max("i") == lo_i + w_i
