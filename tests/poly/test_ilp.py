"""Unit and property tests for the exact (I)LP solver."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly.affine import Constraint, var
from repro.poly.ilp import IlpProblem, IlpStatus


def box_problem(bounds):
    """IlpProblem for a box {name: (lo, hi)}."""
    p = IlpProblem()
    for name, (lo, hi) in bounds.items():
        p.add_constraint(Constraint.ge(var(name), lo))
        p.add_constraint(Constraint.le(var(name), hi))
    return p


class TestLp:
    def test_simple_minimum(self):
        p = box_problem({"x": (2, 10)})
        r = p.minimize(var("x"), integer=False)
        assert r.status is IlpStatus.OPTIMAL
        assert r.value == 2

    def test_negative_bounds(self):
        p = box_problem({"x": (-7, -3)})
        r = p.minimize(var("x"), integer=False)
        assert r.value == -7
        r = p.maximize(var("x"), integer=False)
        assert r.value == -3

    def test_infeasible(self):
        p = box_problem({"x": (5, 2)})
        r = p.minimize(var("x"), integer=False)
        assert r.status is IlpStatus.INFEASIBLE

    def test_unbounded(self):
        p = IlpProblem([Constraint.ge(var("x"), 0)])
        r = p.maximize(var("x"), integer=False)
        assert r.status is IlpStatus.UNBOUNDED

    def test_constraint_tightening_applies_before_solve(self):
        # 2x >= 1 is normalised to x >= 1 (integer tightening happens in the
        # Constraint layer, so even the rational relaxation sees x >= 1).
        p = IlpProblem([Constraint.ge(var("x") * 2 - 1, 0)])
        r = p.minimize(var("x"), integer=False)
        assert r.value == 1

    def test_rational_optimum_via_equalities(self):
        # Equalities are not tightened: x == y/2, y == 1 -> x = 1/2.
        p = IlpProblem(
            [
                Constraint.eq(var("x") * 2 - var("y"), 0),
                Constraint.eq(var("y"), 1),
            ]
        )
        r = p.minimize(var("x"), integer=False)
        assert r.value == Fraction(1, 2)

    def test_two_variable_lp(self):
        # min x + y s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
        p = IlpProblem(
            [
                Constraint.ge(var("x") + var("y") * 2, 4),
                Constraint.ge(var("x") * 3 + var("y"), 6),
                Constraint.ge(var("x"), 0),
                Constraint.ge(var("y"), 0),
            ]
        )
        r = p.minimize(var("x") + var("y"), integer=False)
        assert r.status is IlpStatus.OPTIMAL
        # Optimum at intersection: x = 8/5, y = 6/5, value 14/5.
        assert r.value == Fraction(14, 5)

    def test_equality_constraints(self):
        p = IlpProblem(
            [
                Constraint.eq(var("x") + var("y"), 10),
                Constraint.ge(var("x"), 0),
                Constraint.ge(var("y"), 0),
            ]
        )
        r = p.minimize(var("x"), integer=False)
        assert r.value == 0
        assert r.assignment["y"] == 10


class TestIlp:
    def test_integer_rounding_up(self):
        # min x s.t. 2x >= 1 over integers -> x = 1... constraint normalises
        # to x >= 1 already; use 2x >= 3 (x >= 3/2) via equality to avoid
        # the normaliser: x = y, 2y >= 3 with fractional relaxation.
        p = IlpProblem(
            [
                Constraint.ge(var("x") * 2 + var("y"), 3),
                Constraint.ge(var("y"), 0),
                Constraint.le(var("y"), 0),
                Constraint.ge(var("x"), 0),
            ]
        )
        r = p.minimize(var("x"), integer=True)
        assert r.value == 2

    def test_knapsack_like(self):
        # max 3x + 4y s.t. 2x + 3y <= 7, x,y >= 0 integer.
        p = IlpProblem(
            [
                Constraint.le(var("x") * 2 + var("y") * 3, 7),
                Constraint.ge(var("x"), 0),
                Constraint.ge(var("y"), 0),
            ]
        )
        r = p.maximize(var("x") * 3 + var("y") * 4, integer=True)
        assert r.status is IlpStatus.OPTIMAL
        assert r.value == 10  # x=2,y=1 -> 10 beats x=3,y=0 -> 9 and x=0,y=2 -> 8

    def test_integer_infeasible_but_rational_feasible(self):
        # 2x == 1 has a rational solution but no integer one.
        p = IlpProblem([Constraint.eq(var("x") * 2, 1)])
        assert p.is_feasible(integer=False)
        assert not p.is_feasible(integer=True)

    def test_lexmin(self):
        p = IlpProblem(
            [
                Constraint.ge(var("a") + var("b"), 5),
                Constraint.ge(var("a"), 0),
                Constraint.le(var("a"), 3),
                Constraint.ge(var("b"), 0),
                Constraint.le(var("b"), 9),
            ]
        )
        point = p.lexmin(["a", "b"])
        assert point == {"a": 0, "b": 5}
        point = p.lexmax(["a", "b"])
        assert point == {"a": 3, "b": 9}

    def test_lexmin_infeasible(self):
        p = box_problem({"x": (5, 2)})
        assert p.lexmin(["x"]) is None

    def test_lexmin_unbounded_raises(self):
        p = IlpProblem([Constraint.le(var("x"), 5)])
        with pytest.raises(ValueError):
            p.lexmin(["x"])

    def test_sample(self):
        p = box_problem({"x": (3, 4), "y": (-2, -2)})
        s = p.sample()
        assert s is not None
        assert 3 <= s["x"] <= 4 and s["y"] == -2


@settings(max_examples=40, deadline=None)
@given(
    lo1=st.integers(-8, 8),
    width1=st.integers(0, 6),
    lo2=st.integers(-8, 8),
    width2=st.integers(0, 6),
    c1=st.integers(-3, 3),
    c2=st.integers(-3, 3),
    rhs=st.integers(-10, 10),
)
def test_ilp_matches_brute_force(lo1, width1, lo2, width2, c1, c2, rhs):
    """Integer minimum of c1*x + c2*y over a box with one extra half-plane
    must match brute-force enumeration."""
    hi1, hi2 = lo1 + width1, lo2 + width2
    extra = Constraint.ge(var("x") * 1 + var("y") * 2, rhs)
    p = box_problem({"x": (lo1, hi1), "y": (lo2, hi2)})
    p.add_constraint(extra)
    obj = var("x") * c1 + var("y") * c2
    result = p.minimize(obj, integer=True)

    feasible = [
        (x, y)
        for x in range(lo1, hi1 + 1)
        for y in range(lo2, hi2 + 1)
        if x + 2 * y >= rhs
    ]
    if not feasible:
        assert result.status is IlpStatus.INFEASIBLE
    else:
        expected = min(c1 * x + c2 * y for x, y in feasible)
        assert result.status is IlpStatus.OPTIMAL
        assert result.value == expected


@settings(max_examples=25, deadline=None)
@given(
    lo1=st.integers(-5, 5),
    width1=st.integers(0, 5),
    lo2=st.integers(-5, 5),
    width2=st.integers(0, 5),
)
def test_lexmin_matches_brute_force(lo1, width1, lo2, width2):
    """Lexicographic minimum on a constrained box matches sorted enumeration."""
    hi1, hi2 = lo1 + width1, lo2 + width2
    p = box_problem({"x": (lo1, hi1), "y": (lo2, hi2)})
    p.add_constraint(Constraint.ge(var("x") + var("y"), lo1 + lo2 + 1))
    point = p.lexmin(["x", "y"])
    feasible = sorted(
        (x, y)
        for x in range(lo1, hi1 + 1)
        for y in range(lo2, hi2 + 1)
        if x + y >= lo1 + lo2 + 1
    )
    if not feasible:
        assert point is None
    else:
        assert (point["x"], point["y"]) == feasible[0]


class TestBatchMinimize:
    """batch_minimize must be indistinguishable from minimize in a loop."""

    def _diamond(self):
        p = IlpProblem()
        p.add_constraint(Constraint.ge(var("x") + var("y"), 1))
        p.add_constraint(Constraint.le(var("x") + var("y"), 9))
        p.add_constraint(Constraint.ge(var("x") - var("y"), -4))
        p.add_constraint(Constraint.le(var("x") - var("y"), 4))
        p.add_constraint(Constraint.eq(var("z"), var("x") + 2))
        return p

    def test_matches_sequential_minimize(self):
        objectives = [
            var("x"),
            var("x") * -1,
            var("y"),
            var("z"),
            var("x") + var("y") * 3,
        ]
        batched = self._diamond().batch_minimize(objectives)
        for obj, got in zip(objectives, batched):
            want = self._diamond().minimize(obj)
            assert got.status is want.status
            assert got.value == want.value
            assert got.assignment == want.assignment

    def test_shares_cache_lines_with_minimize(self):
        from repro.poly.cache import ILP_CACHE, clear_solver_caches

        clear_solver_caches()
        self._diamond().minimize(var("x"))
        assert ILP_CACHE.misses == 1 and ILP_CACHE.hits == 0
        self._diamond().batch_minimize([var("x"), var("y")])
        # x hits the entry minimize stored; only y misses.
        assert ILP_CACHE.hits == 1 and ILP_CACHE.misses == 2
        self._diamond().minimize(var("y"))
        assert ILP_CACHE.hits == 2
        clear_solver_caches()

    def test_infeasible_and_unbounded_members(self):
        p = IlpProblem()
        p.add_constraint(Constraint.ge(var("x"), 3))
        p.add_constraint(Constraint.le(var("x"), 1))
        rs = p.batch_minimize([var("x"), var("x") * -1])
        assert all(r.status is IlpStatus.INFEASIBLE for r in rs)
        q = IlpProblem([Constraint.ge(var("x"), 0)])
        rs = q.batch_minimize([var("x"), var("x") * -1])
        assert rs[0].status is IlpStatus.OPTIMAL and rs[0].value == 0
        assert rs[1].status is IlpStatus.UNBOUNDED

    def test_assignments_are_isolated_copies(self):
        rs = self._diamond().batch_minimize([var("x"), var("x")])
        rs[0].assignment["x"] = Fraction(777)
        assert rs[1].assignment["x"] != Fraction(777)

    def test_empty_batch(self):
        assert self._diamond().batch_minimize([]) == []

    def test_rational_batch(self):
        # Equalities are not tightened: x == y/2, y == 1 -> x = 1/2.
        p = IlpProblem(
            [
                Constraint.eq(var("x") * 2 - var("y"), 0),
                Constraint.eq(var("y"), 1),
            ]
        )
        batched = p.batch_minimize([var("x"), var("x") * -1], integer=False)
        assert batched[0].value == Fraction(1, 2)
        assert -batched[1].value == Fraction(1, 2)
