"""Tests for the polyhedral solver memoization layer."""

from fractions import Fraction

import pytest

from repro.poly.affine import Constraint, var
from repro.poly.cache import (
    FM_CACHE,
    ILP_CACHE,
    clear_solver_caches,
    reset_solver_cache_stats,
    solver_cache_stats,
)
from repro.poly.fm import project_onto
from repro.poly.ilp import IlpProblem, IlpStatus


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_solver_caches()
    yield
    clear_solver_caches()


def _box_problem():
    return IlpProblem(
        [
            Constraint.ge(var("i"), 0),
            Constraint.le(var("i"), 7),
            Constraint.ge(var("j"), 0),
            Constraint.le(var("j"), 5),
            Constraint.ge(var("i") - var("j"), -2),
        ]
    )


class TestIlpCache:
    def test_repeat_solve_hits_cache(self):
        obj = var("i") + var("j")
        first = _box_problem().minimize(obj)
        assert ILP_CACHE.misses == 1 and ILP_CACHE.hits == 0
        second = _box_problem().minimize(obj)
        assert ILP_CACHE.hits == 1
        assert second.status is first.status
        assert second.value == first.value
        assert second.assignment == first.assignment

    def test_cached_result_is_isolated_from_mutation(self):
        obj = var("i")
        first = _box_problem().minimize(obj)
        first.assignment["i"] = Fraction(999)
        second = _box_problem().minimize(obj)
        assert second.assignment["i"] != Fraction(999)

    def test_distinct_objectives_do_not_collide(self):
        p = _box_problem()
        lo = p.minimize(var("i"))
        hi = p.maximize(var("i"))
        assert (lo.value, hi.value) == (0, 7)

    def test_infeasible_results_are_cached_too(self):
        bad = IlpProblem(
            [Constraint.ge(var("x"), 3), Constraint.le(var("x"), 1)]
        )
        assert bad.minimize(var("x")).status is IlpStatus.INFEASIBLE
        bad2 = IlpProblem(
            [Constraint.ge(var("x"), 3), Constraint.le(var("x"), 1)]
        )
        assert bad2.minimize(var("x")).status is IlpStatus.INFEASIBLE
        assert ILP_CACHE.hits == 1

    def test_stats_shape(self):
        _box_problem().minimize(var("i"))
        stats = solver_cache_stats()
        assert set(stats) == {"ilp", "fm"}
        for row in stats.values():
            assert {"hits", "misses", "entries", "hit_rate"} <= set(row)

    def test_reset_stats_keeps_entries(self):
        """reset_solver_cache_stats zeroes counters without dropping the
        memo: subsequent identical solves still hit."""
        obj = var("i") + var("j")
        _box_problem().minimize(obj)
        _box_problem().minimize(obj)
        assert ILP_CACHE.hits == 1 and ILP_CACHE.misses == 1
        entries = len(ILP_CACHE)
        reset_solver_cache_stats()
        assert ILP_CACHE.hits == 0 and ILP_CACHE.misses == 0
        assert len(ILP_CACHE) == entries
        _box_problem().minimize(obj)
        assert ILP_CACHE.hits == 1 and ILP_CACHE.misses == 0
        stats = solver_cache_stats()
        assert stats["ilp"]["hits"] == 1


class TestFmCache:
    def test_repeat_projection_hits_cache(self):
        cons = [
            Constraint.ge(var("i"), 0),
            Constraint.le(var("i"), 7),
            Constraint.eq(var("j") - var("i"), 1),
        ]
        first = project_onto(cons, ["j"])
        assert FM_CACHE.misses >= 1
        hits_before = FM_CACHE.hits
        second = project_onto(list(cons), ["j"])
        assert FM_CACHE.hits == hits_before + 1
        assert second == first

    def test_cached_list_is_a_copy(self):
        cons = [Constraint.ge(var("i"), 0), Constraint.le(var("i"), 3)]
        first = project_onto(cons, ["i"])
        first.append(Constraint.ge(var("i"), 99))
        second = project_onto(cons, ["i"])
        assert Constraint.ge(var("i"), 99) not in second


class TestCacheBehaviour:
    def test_disable_bypasses_lookup_and_store(self):
        from repro.poly.cache import set_solver_cache_enabled

        set_solver_cache_enabled(False)
        try:
            _box_problem().minimize(var("i"))
            _box_problem().minimize(var("i"))
            assert ILP_CACHE.hits == 0 and ILP_CACHE.misses == 0
            assert len(ILP_CACHE) == 0
        finally:
            set_solver_cache_enabled(True)

    def test_eviction_bounds_size(self):
        from repro.poly.cache import SolveCache

        cache = SolveCache("t", maxsize=3)
        for i in range(5):
            cache.store(i, i)
        assert len(cache) == 3
        assert cache.lookup(0) is None  # oldest evicted
        assert cache.lookup(4) == 4

    def test_cache_equivalence_on_pipeline(self):
        """Cached and uncached compilation produce byte-identical programs.

        The persistent disk cache is off here: this test isolates the
        in-process solver memoization (a disk hit would skip the solvers
        entirely and prove nothing about them)."""
        from repro.core import diskcache
        from repro.core.compiler import AkgOptions, build
        from repro.ir import ops
        from repro.ir.tensor import placeholder
        from repro.poly.cache import set_solver_cache_enabled

        def kernel():
            x = placeholder((16, 64), "fp16", name="X")
            return ops.relu(x, name="out")

        opts = AkgOptions(tile_sizes=[8, 32])
        with diskcache.disabled():
            set_solver_cache_enabled(False)
            try:
                cold = build(kernel(), "k", options=opts)
            finally:
                set_solver_cache_enabled(True)
            clear_solver_caches()
            warm1 = build(kernel(), "k", options=opts)
            warm2 = build(kernel(), "k", options=opts)
        assert ILP_CACHE.hits > 0
        assert cold.program.dump() == warm1.program.dump() == warm2.program.dump()
