"""Tests for intra-tile fusion: unit assignment and rescheduling."""


from repro.fusion.intratile import (
    assign_compute_units,
    fast_varying_dim,
    is_cube_statement,
    mark_local_buffers,
    sink_fast_dim,
)
from repro.ir import lower, ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.poly.affine import var
from repro.sched.deps import compute_dependences
from repro.sched.scheduler import PolyScheduler
from repro.sched.tree import BandNode, MarkNode


class TestCubeClassification:
    def test_matmul_update_is_cube(self):
        a = placeholder((8, 8), name="A")
        b = placeholder((8, 8), name="B")
        mm = ops.matmul(a, b, name="MM")
        init, update = lower(mm).statements
        assert is_cube_statement(update)
        assert not is_cube_statement(init)

    def test_padded_conv_is_cube(self):
        d = placeholder((1, 2, 6, 6), name="D")
        w = placeholder((2, 2, 3, 3), name="W")
        cv = ops.conv2d(d, w, padding=(1, 1), name="CV")
        update = lower(cv).statements[1]
        assert is_cube_statement(update)

    def test_sum_of_squares_is_not_cube(self):
        """x[i]*x[i] is a vector reduction, not a contraction (the
        BatchNorm-statistics case)."""
        x = placeholder((4, 8), name="X")
        k = reduce_axis((0, 8), "k")
        sq = compute((4,), lambda i: te_sum(x[i, k] * x[i, k], axis=k), name="SQ")
        update = lower(sq).statements[1]
        assert not is_cube_statement(update)

    def test_plain_sum_is_not_cube(self):
        x = placeholder((4, 8), name="X")
        k = reduce_axis((0, 8), "k")
        s = compute((4,), lambda i: te_sum(x[i, k], axis=k), name="S")
        update = lower(s).statements[1]
        assert not is_cube_statement(update)


class TestUnitAssignment:
    def test_mixed_kernel(self):
        a = placeholder((8, 8), name="A")
        b = placeholder((8, 8), name="B")
        mm = ops.matmul(a, b, name="MM")
        out = ops.relu(mm, name="R")
        kernel = lower(out)
        units = assign_compute_units(kernel.statements)
        init, update, relu_stmt = kernel.statements
        assert units.unit_of(update.stmt_id) == "cube"
        assert units.unit_of(init.stmt_id) == "cube"  # L0C accumulator init
        assert units.unit_of(relu_stmt.stmt_id) == "vector"
        assert units.buffer_of(update.stmt_id) == "L1"
        assert units.buffer_of(relu_stmt.stmt_id) == "UB"

    def test_gather_goes_to_scalar(self):
        idx = placeholder((4,), dtype="int32", name="I")
        tab = placeholder((16, 8), name="T")
        g = ops.embedding_lookup(tab, idx, name="G")
        kernel = lower(g)
        units = assign_compute_units(kernel.statements)
        assert units.unit_of(kernel.statements[0].stmt_id) == "scalar"

    def test_pad_feeding_conv_absorbed_into_mte(self):
        x = placeholder((1, 2, 6, 6), name="X")
        p = ops.pad2d(x, 1, 1, name="P")
        w = placeholder((2, 2, 3, 3), name="W")
        # Consume the explicitly-padded tensor with a convolution.
        rc = reduce_axis((0, 2), "rc")
        kh = reduce_axis((0, 3), "kh")
        kw = reduce_axis((0, 3), "kw")
        cv = compute(
            (1, 2, 6, 6),
            lambda n, o, h, ww: te_sum(
                p[n, rc, h + kh, ww + kw] * w[o, rc, kh, kw], axis=(rc, kh, kw)
            ),
            name="CV",
        )
        kernel = lower(cv)
        units = assign_compute_units(kernel.statements)
        pad_stmt = kernel.statements[0]
        assert units.unit_of(pad_stmt.stmt_id) == "mte"


class TestVectorRescheduling:
    def test_fast_varying_dim(self):
        x = placeholder((4, 8), name="X")
        r = ops.relu(x, name="R")
        stmt = lower(r).statements[0]
        assert fast_varying_dim(stmt) == stmt.iter_names[-1]

    def test_sink_fast_dim_permutes(self):
        x = placeholder((4, 8), name="X")
        r = ops.relu(x, name="R")
        stmt = lower(r).statements[0]
        i, j = stmt.iter_names
        band = BandNode(
            {stmt.stmt_id: [var(j), var(i)]},  # fast dim j outermost
            None,
            permutable=True,
            coincident=[True, True],
        )
        sunk = sink_fast_dim(band, stmt)
        assert sunk.schedules[stmt.stmt_id][-1] == var(j)

    def test_sink_requires_permutability(self):
        x = placeholder((4, 8), name="X")
        r = ops.relu(x, name="R")
        stmt = lower(r).statements[0]
        i, j = stmt.iter_names
        band = BandNode(
            {stmt.stmt_id: [var(j), var(i)]}, None, permutable=False
        )
        sunk = sink_fast_dim(band, stmt)
        assert sunk.schedules[stmt.stmt_id][-1] == var(i)  # unchanged

    def test_mark_local_buffers(self):
        a = placeholder((8, 8), name="A")
        b = placeholder((8, 8), name="B")
        out = ops.relu(ops.matmul(a, b, name="MM"), name="R")
        kernel = lower(out)
        deps = compute_dependences(kernel)
        tree = PolyScheduler().schedule_kernel(kernel, deps)
        units = assign_compute_units(kernel.statements)
        mark_local_buffers(tree, units)
        names = {n.name for n in tree.find_all(MarkNode)}
        assert "local_UB" in names
        assert "local_L1" in names
