"""Tests for the TVM-baseline compiler's documented behaviours."""


from repro.core.compiler import build
from repro.hw.isa import VectorInstr
from repro.ir import ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.tvmbaseline.compiler import tvm_build


class TestTvmPadding:
    def test_vector_spans_padded_to_lanes(self):
        """TVM's manual padding rounds vector spans up to full repeats and
        marks them aligned (paper: padding lets TVM win some shapes)."""
        x = placeholder((7, 33), dtype="fp16", name="X")  # ragged spans
        r = ops.relu(x, name="R")
        result = tvm_build(r, "t")

        def walk(instrs):
            from repro.hw.isa import Loop

            for i in instrs:
                if isinstance(i, Loop):
                    yield from walk(i.body)
                else:
                    yield i

        vecs = [i for i in walk(result.program.instructions) if isinstance(i, VectorInstr)]
        assert vecs
        lanes = result.hw.vector_lanes("fp16")
        for v in vecs:
            assert v.aligned
            assert v.elems % lanes == 0

    def test_padding_can_beat_akg_on_ragged_shapes(self):
        """On badly-aligned spans TVM computes padding but stays aligned;
        AKG takes the unaligned path.  TVM must at least be competitive."""
        x = placeholder((64, 33), dtype="fp16", name="X")
        r = ops.sigmoid(x, name="R")
        tvm = tvm_build(r, "t").cycles()
        akg = build(r, "a").cycles()
        assert tvm < akg * 1.3


class TestTvmFusionLimits:
    def test_pointwise_chain_fuses(self):
        x = placeholder((32, 32), name="X")
        out = ops.relu(ops.scalar_add(x, 1.0, name="B"), name="C")
        result = tvm_build(out, "t")
        assert len(result.groups) == 1

    def test_stencil_producer_splits(self):
        a = placeholder((18,), name="A")
        pre = ops.scalar_add(a, 1.0, name="PRE")
        k = reduce_axis((0, 3), "k")
        c = compute((16,), lambda i: te_sum(pre[i + k], axis=k), name="C")
        result = tvm_build(c, "t")
        assert len(result.groups) == 2
        # Cross-group intermediate spills to GM in both plans.
        first_plan = result.plans[0]
        assert any(
            m.tensor_name == "PRE" and m.direction == "out"
            for m in first_plan.moves
        )

    def test_empirical_sync_is_default(self):
        x = placeholder((64, 64), dtype="fp16", name="X")
        out = ops.relu(ops.abs_op(x, name="B"), name="C")
        emp = tvm_build(out, "t").simulate().sync_count
        dp = tvm_build(out, "t", sync_policy="dp").simulate().sync_count
        assert emp >= dp

    def test_refit_shrinks_oversized_template_tiles(self):
        """Template tiles that exceed the buffers are refit, not rejected."""
        x = placeholder((4096, 4096), dtype="fp16", name="X")
        r = ops.relu(x, name="R")
        result = tvm_build(r, "t")
        group = result.groups[0]
        assert result.plans[0].fits(result.hw)
        assert group.total_tiles > 1
