"""Tests for the TVM-style and hand-written CCE baselines."""

import numpy as np
import pytest

from repro.cce import cce_expert_build, cce_naive_build
from repro.cce.expert import isolate_op
from repro.core.compiler import build
from repro.ir import lower, ops
from repro.ir.tensor import placeholder
from repro.runtime.reference import evaluate_tensors
from repro.tvmbaseline.compiler import tvm_build
from repro.tvmbaseline.schedule import Schedule, ScheduleError
from repro.tvmbaseline.templates import expert_tile_sizes, template_for


class TestSchedulePrimitives:
    def setup_method(self):
        a = placeholder((32, 48), name="A")
        b = placeholder((48, 16), name="B")
        self.out = ops.matmul(a, b, name="MM")
        self.s = Schedule(self.out)

    def test_split(self):
        outer, inner = self.s.split(self.out, self.out.op.axes[0].name, 8)
        stage = self.s[self.out]
        assert stage.axis(outer).extent == 4
        assert stage.axis(inner).extent == 8

    def test_split_validates_factor(self):
        with pytest.raises(ScheduleError):
            self.s.split(self.out, self.out.op.axes[0].name, 0)

    def test_reorder(self):
        i = self.out.op.axes[0].name
        j = self.out.op.axes[1].name
        self.s.reorder(self.out, [j, i])
        names = [a.name for a in self.s[self.out].axes]
        assert names.index(j) < names.index(i)

    def test_fuse_adjacent(self):
        i = self.out.op.axes[0].name
        j = self.out.op.axes[1].name
        fused = self.s.fuse(self.out, i, j)
        assert self.s[self.out].axis(fused).extent == 32 * 16

    def test_vectorize_innermost_only(self):
        i = self.out.op.axes[0].name
        with pytest.raises(ScheduleError):
            self.s.vectorize(self.out, i)

    def test_tensorize_requires_reduce_axis(self):
        i = self.out.op.axes[0].name
        with pytest.raises(ScheduleError):
            self.s.tensorize(self.out, i)
        self.s.tensorize(self.out, self.out.op.reduce_axes[0].name)
        assert self.s[self.out].tensorized is not None

    def test_unknown_axis_rejected(self):
        with pytest.raises(ScheduleError):
            self.s.split(self.out, "nope", 2)

    def test_templates_dispatch(self):
        a = placeholder((8, 8), name="A")
        assert template_for(ops.matmul(a, a, name="M")).__name__ == "matmul_template"
        assert template_for(ops.relu(a, name="R")).__name__ == "elementwise_template"
        d = placeholder((1, 2, 8, 8), name="D")
        w = placeholder((2, 2, 3, 3), name="W")
        assert template_for(ops.conv2d(d, w, name="C")).__name__ == "conv2d_template"

    def test_expert_tile_sizes_shapes(self):
        a = placeholder((512, 512), name="A")
        mm = ops.matmul(a, a, name="MM")
        stmt = lower(mm).statements[1]
        from repro.hw.spec import HardwareSpec

        sizes = expert_tile_sizes(stmt, HardwareSpec())
        assert sizes == [64, 256]


class TestExpertIsolation:
    def test_isolate_replaces_inputs(self):
        a = placeholder((8,), name="A")
        b = ops.scalar_add(a, 1.0, name="B")
        c = ops.relu(b, name="C")
        iso = isolate_op(c)
        deps = iso.op.input_tensors()
        assert all(t.is_placeholder for t in deps)

    def test_isolated_semantics_preserved(self):
        a = placeholder((6, 6), name="A")
        r = ops.relu(a, name="R")
        iso = isolate_op(r)
        x = np.random.default_rng(0).standard_normal((6, 6)).astype(np.float32)
        got = evaluate_tensors(iso, {iso.op.input_tensors()[0].name: x})["R"]
        np.testing.assert_allclose(got, np.maximum(x, 0), rtol=1e-6)


class TestBaselineOrdering:
    """The performance ordering the paper's Fig. 9/12 relies on."""

    def test_single_op_ordering(self):
        x = placeholder((16, 32, 16, 16), dtype="fp16", name="X")
        r = ops.relu(x, name="R")
        naive = cce_naive_build(r).cycles()
        expert = cce_expert_build(r).cycles()
        akg = build(r).cycles()
        assert naive > expert  # naive clearly slower
        assert abs(akg - expert) / expert < 0.5  # AKG within reach of expert

    def test_expert_close_to_akg_on_matmul(self):
        a = placeholder((256, 256), dtype="fp16", name="A")
        b = placeholder((256, 256), dtype="fp16", name="B")
        mm = ops.matmul(a, b, name="MM")
        expert = cce_expert_build(mm).cycles()
        akg = build(mm).cycles()
        assert abs(akg - expert) / expert < 0.3

    def test_expert_loses_big_on_vector_subgraph(self):
        """No cross-op fusion: every op round-trips GM (Fig. 12's 5.6x)."""
        x = placeholder((64, 128, 16, 16), dtype="fp16", name="X")
        t = x
        for i in range(8):
            t = ops.scalar_add(t, 0.1, name=f"chain{i}")
        expert = cce_expert_build(t).cycles()
        akg = build(t).cycles()
        assert expert / akg > 3.0

    def test_tvm_between_akg_and_expert_on_subgraphs(self):
        x = placeholder((64, 128, 16, 16), dtype="fp16", name="X")
        t = x
        for i in range(6):
            t = ops.relu(ops.scalar_add(t, 0.1, name=f"c{i}a"), name=f"c{i}r")
        akg = build(t).cycles()
        tvm = tvm_build(t).cycles()
        expert = cce_expert_build(t).cycles()
        assert akg <= tvm * 1.05  # AKG at least matches TVM
        assert tvm < expert       # both compilers beat per-op expert code
