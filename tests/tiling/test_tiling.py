"""Tests for band tiling, the reverse strategy and post-tiling fusion."""

import pytest

from repro.ir import lower, ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.poly.affine import AffineExpr, Constraint, var
from repro.sched.clustering import conservative_clustering
from repro.sched.deps import compute_dependences
from repro.sched.scheduler import PolyScheduler, check_legality
from repro.sched.tree import BandNode, ExtensionNode
from repro.fusion.posttile import apply_post_tiling_fusion
from repro.tiling.reverse import (
    footprint_box,
    liveout_instance_relation,
    producer_tile_relation,
    tile_footprint,
)
from repro.tiling.tile import tile_band


def _gather(idx, i):
    """Index expression reading through an index tensor (non-affine)."""
    return idx[i]


def running_example(H=12, W=12, KH=3, KW=3):
    """The Fig. 3 pattern: bias add -> conv -> abs -> relu."""
    a = placeholder((H, W), name="A")
    a1 = ops.scalar_add(a, 1.0, name="A1")
    b = placeholder((KH, KW), name="B")
    kh = reduce_axis((0, KH), "kh")
    kw = reduce_axis((0, KW), "kw")
    c = compute(
        (H - KH + 1, W - KW + 1),
        lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
        name="C",
    )
    c1 = ops.abs_op(c, name="C1")
    c2 = ops.relu(c1, name="C2")
    return c2


def scheduled(out):
    kernel = lower(out)
    deps = compute_dependences(kernel)
    clustering = conservative_clustering(kernel, deps)
    tree = PolyScheduler().schedule_kernel(kernel, deps, clustering)
    return kernel, deps, clustering, tree


class TestTileBand:
    def test_tile_band_structure(self):
        a = placeholder((32, 32), name="A")
        b = ops.relu(a, name="B")
        kernel, deps, clustering, tree = scheduled(b)
        band = tree.find_all(BandNode)[0]
        tiled = tile_band(band, [8, 8])
        assert tiled.tile_sizes == [8, 8]
        assert tiled.child is band

    def test_tile_size_validation(self):
        a = placeholder((32, 32), name="A")
        b = ops.relu(a, name="B")
        _, _, _, tree = scheduled(b)
        band = tree.find_all(BandNode)[0]
        with pytest.raises(ValueError):
            tile_band(band, [8])
        with pytest.raises(ValueError):
            tile_band(band, [8, 0])

    def test_tiled_tree_remains_legal(self):
        a = placeholder((32, 32), name="A")
        b = ops.scalar_add(a, 1.0, name="B")
        c = ops.relu(b, name="C")
        kernel, deps, clustering, tree = scheduled(c)
        # Tile the single fused band in place.
        filters = tree.child.children if tree.child.children else [tree.child]
        band = tree.find_all(BandNode)[0]
        from repro.sched.tree import find_parent, replace_child

        parent = find_parent(tree, band)
        replace_child(parent, band, tile_band(band, [8, 8]))
        assert not check_legality(tree, deps)

    def test_non_permutable_band_rejected(self):
        band = BandNode(
            {"S0": [var("i"), var("j")]}, None, permutable=False
        )
        with pytest.raises(ValueError):
            tile_band(band, [4, 4])
        # But allowed when explicitly requested (1-row-at-a-time semantics).
        tiled = tile_band(band, [4, 4], require_permutable=False)
        assert tiled.tile_sizes == [4, 4]


class TestReverseStrategy:
    def test_liveout_instance_relation_counts(self):
        a = placeholder((16,), name="A")
        b = ops.relu(a, name="B")
        kernel = lower(b)
        stmt = kernel.statements[0]
        rows = [AffineExpr.variable(stmt.iter_names[0])]
        rel = liveout_instance_relation(stmt, rows, [4], ["o0"])
        # Tile 0 covers instances 0..3.
        img = rel.add_constraints([Constraint.eq(var("o0"), 0)]).range()
        box = img.bounding_box()
        assert box == {stmt.iter_names[0]: (0, 3)}
        img3 = rel.add_constraints([Constraint.eq(var("o0"), 3)]).range()
        assert img3.bounding_box() == {stmt.iter_names[0]: (12, 15)}

    def test_overlapped_producer_tiles_match_paper_formula(self):
        """Producer tile extent must be T + KH - 1 (the paper's overlap)."""
        out = running_example(H=12, W=12, KH=3, KW=3)
        kernel, deps, clustering, tree = scheduled(out)
        stmt_by_id = {s.stmt_id: s for s in kernel.statements}
        liveout_band = None
        for band in tree.find_all(BandNode):
            if "S2" in band.schedules and "S3" in band.schedules:
                liveout_band = band
                break
        assert liveout_band is not None
        T = 4
        tile_dims = ["o0", "o1"]
        consumer_rel = {}
        for sid in liveout_band.schedules:
            stmt = stmt_by_id[sid]
            consumer_rel[sid] = (
                stmt,
                liveout_instance_relation(
                    stmt, liveout_band.schedules[sid], [T, T], tile_dims
                ),
            )
        producer = stmt_by_id["S0"]
        rel = producer_tile_relation(producer, consumer_rel, deps, tile_dims)
        assert rel is not None
        # Tile (0, 0): h in [0, T+KH-2] = [0, 5].
        box = footprint_box(
            rel.compose(producer.write_map()) if False else rel,
            {"o0": 0, "o1": 0},
        )
        h_dim, w_dim = producer.iter_names
        assert box[h_dim] == (0, T + 3 - 2)
        assert box[w_dim] == (0, T + 3 - 2)
        # Interior tile (1, 1) starts at T*1 and overlaps the next KH-1 rows.
        box = footprint_box(rel, {"o0": 1, "o1": 1})
        assert box[h_dim] == (T, 2 * T + 3 - 2)

    def test_tile_footprint_composition(self):
        """tile -> instances -> tensor elements composition."""
        a = placeholder((16, 16), name="A")
        b = ops.relu(a, name="B")
        kernel = lower(b)
        stmt = kernel.statements[0]
        rows = [AffineExpr.variable(d) for d in stmt.iter_names]
        inst = liveout_instance_relation(stmt, rows, [4, 8], ["o0", "o1"])
        read_map = stmt.read_maps()[0]
        fp = tile_footprint(read_map, inst)
        box = footprint_box(fp, {"o0": 1, "o1": 0})
        assert box == {"A_d0": (4, 7), "A_d1": (0, 7)}


class TestPostTilingFusion:
    def test_running_example_fused(self):
        out = running_example(H=12, W=12)
        kernel, deps, clustering, tree = scheduled(out)
        result = apply_post_tiling_fusion(tree, kernel, deps, clustering, [4, 4])
        # One fused tile nest containing everything.
        assert len(result.groups) == 1
        group = result.groups[0]
        assert group.fused_producer_ids == ["S0"]
        assert set(group.liveout_ids) == {"S1", "S2", "S3", "S4"}
        assert group.tile_counts == [3, 3]  # ceil(10/4) = 3 per dim
        # Tree carries the extension and the skip mark of Fig. 3(e).
        assert result.tree.find_all(ExtensionNode)
        assert result.tree.find_mark("skipped") is not None

    def test_fused_tree_is_legal_outside_skipped(self):
        out = running_example(H=12, W=12)
        kernel, deps, clustering, tree = scheduled(out)
        result = apply_post_tiling_fusion(tree, kernel, deps, clustering, [4, 4])
        violations = check_legality(result.tree, deps)
        assert not violations

    def test_producer_instances_cover_consumer_needs(self):
        """Union over tiles of extended producer instances covers the
        producer instances every consumer read requires."""
        out = running_example(H=10, W=10)
        kernel, deps, clustering, tree = scheduled(out)
        result = apply_post_tiling_fusion(tree, kernel, deps, clustering, [4, 4])
        group = result.groups[0]
        producer = next(s for s in kernel.statements if s.stmt_id == "S0")
        rel = group.instance_relations["S0"]
        covered = set()
        for o0 in range(group.tile_counts[0]):
            for o1 in range(group.tile_counts[1]):
                box = footprint_box(rel, {"o0": o0, "o1": o1})
                if box is None:
                    continue
                h_dim, w_dim = producer.iter_names
                for h in range(box[h_dim][0], box[h_dim][1] + 1):
                    for w in range(box[w_dim][0], box[w_dim][1] + 1):
                        covered.add((h, w))
        # Every producer instance the convolution needs is covered.
        needed = {
            (h, w) for h in range(10) for w in range(10)
        }  # conv consumes the full 10x10 bias-added map (8x8 out + 3x3 k)
        assert needed <= covered

    def test_pointwise_chain_no_extension(self):
        a = placeholder((16, 16), name="A")
        b = ops.scalar_add(a, 1.0, name="B")
        c = ops.relu(b, name="C")
        kernel, deps, clustering, tree = scheduled(c)
        result = apply_post_tiling_fusion(tree, kernel, deps, clustering, [8, 8])
        group = result.groups[0]
        # Both statements are live-out (pointwise merge); no extension needed.
        assert not group.fused_producer_ids
        assert not result.tree.find_all(ExtensionNode)
        assert group.tile_counts == [2, 2]

    def test_transpose_of_placeholder_fuses(self):
        """Transposing an *input* is pointwise w.r.t. its consumer: the
        non-uniform access hits a placeholder (no dependence), so the
        whole chain fuses into one tile nest."""
        a = placeholder((8, 8), name="A")
        t = ops.transpose(a, (1, 0), name="T")
        c = ops.relu(t, name="C")
        kernel, deps, clustering, tree = scheduled(c)
        result = apply_post_tiling_fusion(tree, kernel, deps, clustering, [4, 4])
        assert len(result.groups) == 1

    def test_transposed_read_of_computed_tensor_fuses(self):
        """A transposed read is functionally determined by the consumer
        instance, so the reverse strategy fuses it (per-tile producer
        footprint = the transposed rectangle, recompute factor ~ 1)."""
        a = placeholder((8, 8), name="A")
        r = ops.relu(a, name="R")
        c = ops.transpose(r, (1, 0), name="C")
        kernel, deps, clustering, tree = scheduled(c)
        result = apply_post_tiling_fusion(tree, kernel, deps, clustering, [4, 4])
        assert len(result.groups) == 1
        assert result.groups[0].fused_producer_ids == ["S0"]

    def test_gather_producer_stays_separate(self):
        """A data-dependent gather of a *computed* tensor is a genuine
        barrier: the producer must stay a separate tile nest."""
        idx = placeholder((8,), dtype="int32", name="IDX")
        a = placeholder((8,), name="A")
        r = ops.relu(a, name="R")
        g = compute((8,), lambda i: r[_gather(idx, i)], name="G")
        kernel, deps, clustering, tree = scheduled(g)
        result = apply_post_tiling_fusion(tree, kernel, deps, clustering, [4])
        assert len(result.groups) == 2
        assert result.groups[0].statements[0].tensor.name == "R"
        # The barrier group is a whole-space single tile nest.
        assert result.groups[0].total_tiles == 1

    def test_full_reduction_producer_stays_separate(self):
        """A rank-reducing full reduction feeding every tile would be
        recomputed per tile; the recompute guard keeps it separate."""
        x = placeholder((64, 64), name="X")
        k = reduce_axis((0, 64), "k")
        s = compute((64,), lambda i: te_sum(x[i, k], axis=k), name="S")
        out = compute(
            (64, 64), lambda i, j: x[i, j] - s[i] + 0.0, name="OUT"
        )
        kernel, deps, clustering, tree = scheduled(out)
        result = apply_post_tiling_fusion(tree, kernel, deps, clustering, [8, 8])
        names = [g.statements[0].tensor.name for g in result.groups]
        assert len(result.groups) == 2
        assert "S" in names
