"""Tests for the tiling-policy language (Fig. 4) and Auto Tiling."""

import pytest

from repro.hw.spec import HardwareSpec
from repro.tiling.auto import AutoTiler, LinearFootprintEvaluator
from repro.tiling.spec import (
    TileSpec,
    TilingSpecError,
    parse_tiling_policy,
)


class TestSpecLanguage:
    def test_single_statement(self):
        p = parse_tiling_policy("S_0: 32@UB, 32@UB")
        spec = p.spec_for("S0")
        assert spec is not None
        assert spec.sizes == [32, 32]
        assert spec.buffers == ["UB", "UB"]

    def test_multiple_statements(self):
        text = """
        S_0: 32@UB, 32@UB
        S_2: 16@L1, 16@L1, 512@L0A
        """
        p = parse_tiling_policy(text)
        assert p.sizes_for("S0") == [32, 32]
        assert p.sizes_for("S2") == [16, 16, 512]
        assert p.spec_for("S2").buffers == ["L1", "L1", "L0A"]
        assert p.spec_for("S9") is None

    def test_compact_stmt_id_form(self):
        p = parse_tiling_policy("S3: 8@L0C")
        assert p.sizes_for("S3") == [8]

    def test_comments_and_blank_lines(self):
        p = parse_tiling_policy("# header\n\nS_1: 4@UB  # trailing\n")
        assert p.sizes_for("S1") == [4]

    def test_roundtrip_render(self):
        text = "S_0: 32@UB, 16@L1"
        p = parse_tiling_policy(text)
        p2 = parse_tiling_policy(p.render())
        assert p2.sizes_for("S0") == [32, 16]

    @pytest.mark.parametrize(
        "bad",
        [
            "S0 32@UB",          # missing colon
            "X0: 32@UB",          # bad statement id
            "S0: 32UB",           # missing @
            "S0: -3@UB",          # negative size
            "S0: 32@XYZ",         # unknown buffer
            "S0:",                # empty specs
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(TilingSpecError):
            parse_tiling_policy(bad)

    def test_duplicate_statement_rejected(self):
        with pytest.raises(TilingSpecError):
            parse_tiling_policy("S0: 1@UB\nS_0: 2@UB")

    def test_zero_size_rejected(self):
        with pytest.raises(TilingSpecError):
            TileSpec(0, "UB")


def elementwise_evaluator(extents, dtype_bytes=2, tensors=3):
    """Evaluator for `tensors` same-shape operands of an elementwise op."""
    factors = [(d, 1.0, 0.0) for d in range(len(extents))]
    terms = [("UB", dtype_bytes, list(factors), True) for _ in range(tensors)]
    return LinearFootprintEvaluator(terms)


def conv_like_evaluator(extents, halo=2):
    """Evaluator with an overlapped input: (T0+halo) x (T1+halo) input tile."""
    in_factors = [(0, 1.0, float(halo)), (1, 1.0, float(halo))]
    out_factors = [(0, 1.0, 0.0), (1, 1.0, 0.0)]
    terms = [
        ("UB", 2, in_factors, True),
        ("UB", 2, out_factors, True),
    ]
    return LinearFootprintEvaluator(terms)


class TestAutoTiler:
    def test_small_problem_untouched_without_double_buffering(self):
        hw = HardwareSpec()
        tiler = AutoTiler(
            hw, elementwise_evaluator([64, 64]), [64, 64], double_buffered=False
        )
        sizes = tiler.search()
        # 3 x 64*64*2B = 24 KiB fits UB and there is no pipeline to fill.
        assert sizes == [64, 64]

    def test_double_buffering_prefers_pipelineable_tiles(self):
        """With double buffering, a single whole-space tile cannot overlap
        transfers with compute, so the search splits into >= a few tiles."""
        hw = HardwareSpec()
        tiler = AutoTiler(hw, elementwise_evaluator([64, 64]), [64, 64])
        sizes = tiler.search()
        n_tiles = 1
        for e, s in zip([64, 64], sizes):
            n_tiles *= -(-e // s)
        assert n_tiles >= AutoTiler.PIPELINE_TILES
        assert tiler.fits(sizes)

    def test_capacity_forces_tiling(self):
        hw = HardwareSpec()
        extents = [4096, 4096]
        tiler = AutoTiler(hw, elementwise_evaluator(extents), extents)
        sizes = tiler.search()
        assert sizes != extents
        assert tiler.fits(sizes)
        # 3 tensors * prod(sizes) * 2 bytes <= UB/2.
        assert 3 * sizes[0] * sizes[1] * 2 <= hw.usable_capacity("UB")

    def test_overlap_prefers_larger_tiles(self):
        """With halo overlap, movement/compute decreases with tile size, so
        the tiler should pick the largest feasible tiles."""
        hw = HardwareSpec()
        extents = [1024, 1024]
        tiler = AutoTiler(hw, conv_like_evaluator(extents), extents)
        sizes = tiler.search()
        assert tiler.fits(sizes)
        # Doubling either dim must violate capacity (maximality).
        for d in range(2):
            bigger = list(sizes)
            bigger[d] = min(bigger[d] * 2, extents[d])
            if bigger != sizes:
                assert not tiler.fits(bigger) or tiler.cost(bigger) >= tiler.cost(sizes) - 1e-9

    def test_infeasible_at_size_one_raises(self):
        hw = HardwareSpec()
        # A tensor axis independent of the tile: constant 1 GiB footprint.
        ev = LinearFootprintEvaluator([("UB", 2, [(None, 0.0, 1 << 29)], True)])
        tiler = AutoTiler(hw, ev, [16])
        with pytest.raises(RuntimeError):
            tiler.search()

    def test_cost_metric_shape(self):
        """Cost = warm-up + movement/compute: for pure elementwise tiles the
        per-element movement is constant, so cost is flat in tile size and
        the search keeps the full extent."""
        hw = HardwareSpec()
        ev = elementwise_evaluator([128, 128])
        tiler = AutoTiler(hw, ev, [128, 128])
        c_small = tiler.cost([16, 16])
        c_big = tiler.cost([64, 64])
        # Bigger tiles amortise the per-run overhead: cost non-increasing.
        assert c_big <= c_small + 1e-9

    def test_policy_wrapper(self):
        hw = HardwareSpec()
        tiler = AutoTiler(hw, elementwise_evaluator([32, 32]), [32, 32])
        sizes = tiler.search()
        policy = tiler.as_policy("S0", sizes, ["UB", "UB"])
        assert policy.sizes_for("S0") == sizes
