"""The chaos sweep: every single-fault scenario ends ok or typed.

Marked ``chaos`` (deselected by default; ``pytest -m chaos`` or
``scripts/check.sh`` runs it).  The full scenario x kernel matrix also
runs as ``python -m repro.tools.bench --chaos``.
"""

import pytest

from repro.tools import bench

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def sweep():
    return bench.run_chaos_suite(quick=True)


class TestChaosSweep:
    def test_quick_sweep_is_all_acceptable(self, sweep):
        report = sweep
        failures = {
            (spec, kernel): cell["outcome"]
            for spec, row in report["scenarios"].items()
            for kernel, cell in row.items()
            if not cell["acceptable"]
        }
        assert report["all_acceptable"], failures

    def test_sweep_covers_every_registered_fault_site(self):
        from repro.tools import faultinject

        swept = {spec.split(":")[0] for spec in bench.CHAOS_SCENARIOS}
        # autotune.worker is exercised by the service chaos cell (a tune
        # request on a crashing measurer pool), not the compile sweep.
        # The service.* sites belong to the chaos-serve suite (bench
        # --chaos-serve), which drives them against a live service.
        service_sites = {s for s in faultinject.SITES if s.startswith("service.")}
        assert swept == set(faultinject.SITES) - {"autotune.worker"} - service_sites

    def test_service_survives_tuner_worker_crash(self, sweep):
        # The service chaos scenario: a measurer-pool worker crash under
        # a daemon tune request must degrade to serial measurement (PR 4
        # semantics), leave sibling compile requests untouched, and never
        # hang the queue.
        cell = sweep["scenarios"]["autotune.worker:crash"]["service:tune"]
        assert cell["acceptable"], cell
        assert cell["queue_alive"], cell
        assert cell["healthy_ok"] == 3, cell
        assert cell["outcome"] != "HANG", cell

    def test_ladder_actually_fires_somewhere(self, sweep):
        # The sweep must not pass vacuously: at least one cell recovers
        # through a recorded degradation rather than failing typed.
        report = sweep
        degraded = [
            (spec, kernel)
            for spec, row in report["scenarios"].items()
            for kernel, cell in row.items()
            if cell.get("degraded")
        ]
        assert degraded
