"""Tests for the pipeline benchmark and the perf instrumentation."""

import json

import pytest

from repro.tools import perf


class TestPerf:
    def test_stage_accumulates(self):
        perf.reset()
        with perf.stage("unit_test_stage"):
            pass
        with perf.stage("unit_test_stage"):
            pass
        data = perf.report()
        row = data["stages"]["unit_test_stage"]
        assert row["calls"] == 2
        assert row["seconds"] >= 0.0
        assert "solver_cache" in data
        perf.reset()
        assert perf.report()["stages"] == {}

    def test_format_report_renders(self):
        perf.reset()
        with perf.stage("render_me"):
            pass
        text = perf.format_report()
        assert "render_me" in text
        assert "solver cache [ilp]" in text
        perf.reset()

    def test_build_populates_stage_timings(self):
        from repro.core.compiler import build
        from repro.ir import ops
        from repro.ir.tensor import placeholder

        perf.reset()
        x = placeholder((16, 64), "fp16", name="X")
        build(ops.relu(x, name="out"), "k")
        stages = perf.report()["stages"]
        for expected in (
            "frontend.lower",
            "frontend.deps",
            "frontend.schedule",
            "backend.tile_fit",
            "backend.codegen",
        ):
            assert expected in stages, expected
        perf.reset()

    def test_gemm_pipeline_has_nonzero_solver_cache_hit_rate(self):
        """Acceptance criterion: the solver cache must hit on GEMM."""
        from repro.core.compiler import build
        from repro.ir import ops
        from repro.ir.tensor import placeholder
        from repro.poly.cache import clear_solver_caches, solver_cache_stats

        clear_solver_caches()
        a = placeholder((64, 64), "fp16", name="A")
        b = placeholder((64, 64), "fp16", name="B")
        build(ops.matmul(a, b, name="out"), "gemm")
        stats = solver_cache_stats()
        assert stats["ilp"]["hits"] > 0
        assert stats["ilp"]["hit_rate"] > 0.0
        clear_solver_caches()


class TestBenchCli:
    def test_main_writes_json(self, tmp_path, monkeypatch):
        """Smoke-run the CLI on one tiny kernel set (quick mode, trimmed)."""
        import repro.tools.bench as bench

        def tiny_kernels(quick):
            from repro.ir import ops
            from repro.ir.tensor import placeholder

            def relu():
                x = placeholder((16, 64), "fp16", name="X")
                return ops.relu(x, name="out")

            return {"relu": relu}

        monkeypatch.setattr(bench, "_kernels", tiny_kernels)
        out = tmp_path / "BENCH_pipeline.json"
        assert bench.main(["--quick", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["benchmark"] == "pipeline"
        row = data["kernels"]["relu"]
        assert row["results_agree"] is True
        assert row["legacy_seconds"] > 0
        assert row["staged_seconds"] > 0
        assert row["solver_cache"]["ilp"]["hits"] >= 0

    @pytest.mark.slow
    def test_full_quick_suite_speedup(self, tmp_path):
        """The staged pipeline must beat legacy ≥5x on a cube operator."""
        import repro.tools.bench as bench

        report = bench.run_suite(quick=True)
        assert all(r["results_agree"] for r in report["kernels"].values())
        cube_speedups = [
            report["kernels"][k]["speedup_vs_legacy"]
            for k in ("matmul", "conv2d")
        ]
        assert max(cube_speedups) >= 5.0


class TestDiskcacheBench:
    def test_build_child_round_trip(self, tmp_path):
        """Two in-process child runs against one cache dir: the second is
        a hit and the program dump is byte-identical."""
        import repro.tools.bench as bench

        payload = ("matmul", True, str(tmp_path / "c"), False)
        cold = bench._diskcache_build_child(payload)
        warm = bench._diskcache_build_child(payload)
        assert warm["dump_sha"] == cold["dump_sha"]
        assert warm["tile_sizes"] == cold["tile_sizes"]
        assert warm["cycles"] == cold["cycles"]
        assert warm["disk"]["hits"] > 0

    def test_build_child_disabled_matches(self, tmp_path):
        import repro.tools.bench as bench

        cached = bench._diskcache_build_child(
            ("matmul", True, str(tmp_path / "c"), False)
        )
        plain = bench._diskcache_build_child(("matmul", True, None, True))
        assert plain["dump_sha"] == cached["dump_sha"]
        assert not plain["disk"]["enabled"]

    @pytest.mark.slow
    def test_diskcache_suite_speedup(self):
        """Acceptance criterion: warm-process rebuild ≥5x faster than
        cold, byte-identical dumps, identical tuner best sizes."""
        import repro.tools.bench as bench

        report = bench.run_diskcache_suite(quick=True, kernels=("matmul",))
        row = report["kernels"]["matmul"]
        assert row["dumps_identical"] is True
        assert row["tuner_agree"] is True
        assert row["warm_hit"] is True
        assert row["speedup_warm_vs_cold"] >= 5.0


class TestExecBench:
    def test_exec_quick_suite_exact_and_no_fallbacks(self):
        """Quick exec suite: every kernel bit-exact, zero scalar
        fallbacks, vectorized faster than scalar."""
        import repro.tools.bench as bench

        report = bench.run_exec_suite(quick=True)
        assert report["benchmark"] == "exec"
        assert report["kernels"], "exec suite ran no kernels"
        for name, row in report["kernels"].items():
            assert row["exact_equal"] is True, name
            assert row["scalar_fallbacks"] == 0, name
            assert row["speedup"] > 1.0, name
        for name, row in report["replay"].items():
            assert row["exact_equal"] is True, name

    def test_exec_cli_writes_json(self, tmp_path):
        import json

        import repro.tools.bench as bench

        out = tmp_path / "BENCH_exec.json"
        assert bench.main(["--exec", "--quick", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["benchmark"] == "exec"
        assert all(r["exact_equal"] for r in data["kernels"].values())
