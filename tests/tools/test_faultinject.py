"""The fault-injection harness: spec grammar, determinism, delivery."""

import pytest

from repro.core import resilience
from repro.core.errors import (
    CacheCorruptionError,
    SchedulingError,
    SolverBudgetError,
    StageTimeoutError,
)
from repro.core.resilience import StageBudget
from repro.tools import faultinject


class TestSpecParsing:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faultinject._parse("no.such.site:error")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            faultinject._parse("ilp.solve:explode")

    def test_missing_mode_rejected(self):
        with pytest.raises(ValueError, match="needs site:mode"):
            faultinject._parse("ilp.solve")

    def test_bad_flag_rejected(self):
        with pytest.raises(ValueError, match="bad fault flag"):
            faultinject._parse("ilp.solve:error#whenever")

    def test_full_grammar_round_trip(self):
        table = faultinject._parse(
            "ilp.solve:error@frontend.schedule#skip=2#limit=3, fm.eliminate:delay"
        )
        [d] = table["ilp.solve"]
        assert (d.mode, d.stage, d.skip, d.limit) == (
            "error", "frontend.schedule", 2, 3
        )
        assert table["fm.eliminate"][0].mode == "delay"

    def test_once_is_limit_one(self):
        [d] = faultinject._parse("ilp.solve:error#once")["ilp.solve"]
        assert d.limit == 1


class TestDelivery:
    def test_disabled_harness_is_a_no_op(self):
        assert faultinject.current_spec() is None
        faultinject.fire("ilp.solve")
        assert faultinject.directive("diskcache.read") is None

    def test_error_mode_raises_the_sites_typed_class(self):
        with faultinject.inject("ilp.solve:error"):
            with pytest.raises(SolverBudgetError, match="injected fault"):
                faultinject.fire("ilp.solve")
        faultinject.fire("ilp.solve")  # spec cleared on exit

    def test_error_carries_the_active_stage(self):
        with faultinject.inject("sched.pluto_row:error"):
            with resilience.stage_scope("frontend.schedule"):
                with pytest.raises(SchedulingError) as info:
                    faultinject.fire("sched.pluto_row")
        assert info.value.stage == "frontend.schedule"

    def test_other_sites_unaffected(self):
        with faultinject.inject("ilp.solve:error"):
            faultinject.fire("fm.eliminate")
            faultinject.fire("tiling.auto_search")

    def test_skip_then_limit(self):
        with faultinject.inject("ilp.solve:error#skip=2#limit=1"):
            faultinject.fire("ilp.solve")  # skipped
            faultinject.fire("ilp.solve")  # skipped
            with pytest.raises(SolverBudgetError):
                faultinject.fire("ilp.solve")  # fires
            faultinject.fire("ilp.solve")  # limit exhausted

    def test_stage_scoping_is_a_prefix_match(self):
        with faultinject.inject("ilp.solve:error@frontend.schedule"):
            faultinject.fire("ilp.solve")  # no matching stage active
            with resilience.stage_scope("frontend.deps"):
                faultinject.fire("ilp.solve")  # different stage
            with resilience.stage_scope("frontend.schedule[identity-only]"):
                with pytest.raises(SolverBudgetError):
                    faultinject.fire("ilp.solve")  # ladder rungs match too

    def test_delay_trips_the_active_deadline(self):
        with faultinject.inject("ilp.solve:delay"):
            with resilience.stage_scope("s", StageBudget(stage_seconds=60.0)):
                with pytest.raises(StageTimeoutError):
                    faultinject.fire("ilp.solve")

    def test_delay_without_deadline_is_harmless(self):
        with faultinject.inject("ilp.solve:delay"):
            with resilience.stage_scope("s"):  # unbudgeted
                faultinject.fire("ilp.solve")

    def test_directive_returns_mangling_modes(self):
        with faultinject.inject("diskcache.read:corrupt"):
            assert faultinject.directive("diskcache.read") == "corrupt"
        with faultinject.inject("diskcache.read:truncate"):
            assert faultinject.directive("diskcache.read") == "truncate"

    def test_directive_error_mode_raises(self):
        with faultinject.inject("diskcache.read:error"):
            with pytest.raises(CacheCorruptionError):
                faultinject.directive("diskcache.read")

    def test_env_var_activation_and_refresh(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "ilp.solve:error")
        with pytest.raises(SolverBudgetError):
            faultinject.fire("ilp.solve")
        monkeypatch.setenv("REPRO_FAULT_SPEC", "fm.eliminate:error")
        faultinject.fire("ilp.solve")  # re-read on raw-value change
        with pytest.raises(SolverBudgetError):
            faultinject.fire("fm.eliminate")
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        faultinject.fire("fm.eliminate")

    def test_programmatic_spec_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "ilp.solve:error")
        with faultinject.inject("fm.eliminate:error"):
            faultinject.fire("ilp.solve")  # env spec masked
            with pytest.raises(SolverBudgetError):
                faultinject.fire("fm.eliminate")

    def test_determinism_same_spec_same_firing_pattern(self):
        def pattern():
            fired = []
            with faultinject.inject("ilp.solve:error#skip=1#limit=2"):
                for _ in range(5):
                    try:
                        faultinject.fire("ilp.solve")
                        fired.append(False)
                    except SolverBudgetError:
                        fired.append(True)
            return fired

        assert pattern() == pattern() == [False, True, True, False, False]


class TestThreadLocality:
    """Programmatic specs are per-thread: the compile service installs a
    request's fault_spec on its worker without poisoning siblings."""

    def test_spec_on_one_thread_is_invisible_to_another(self):
        import threading

        from repro.core.errors import SolverBudgetError

        installed = threading.Event()
        checked = threading.Event()
        sibling_fired = []

        def sibling():
            installed.wait(timeout=10)
            # This thread never set a spec; the site must stay silent.
            try:
                faultinject.fire("ilp.solve")
                sibling_fired.append(False)
            except SolverBudgetError:
                sibling_fired.append(True)
            checked.set()

        t = threading.Thread(target=sibling)
        t.start()
        faultinject.set_spec("ilp.solve:error")
        try:
            installed.set()
            assert checked.wait(timeout=10)
            # ... while the installing thread still sees it.
            with pytest.raises(SolverBudgetError):
                faultinject.fire("ilp.solve")
        finally:
            faultinject.set_spec(None)
        t.join()
        assert sibling_fired == [False]

    def test_env_spec_is_process_global(self, monkeypatch):
        import threading

        from repro.core.errors import SolverBudgetError

        monkeypatch.setenv("REPRO_FAULT_SPEC", "ilp.solve:error")
        hits = []

        def worker():
            try:
                faultinject.fire("ilp.solve")
                hits.append(False)
            except SolverBudgetError:
                hits.append(True)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hits == [True, True, True]

    def test_inject_restores_the_calling_threads_spec(self):
        faultinject.set_spec("fm.eliminate:error")
        try:
            with faultinject.inject("ilp.solve:error"):
                assert faultinject.current_spec() == "ilp.solve:error"
            assert faultinject.current_spec() == "fm.eliminate:error"
        finally:
            faultinject.set_spec(None)
        assert faultinject.current_spec() in (None, "")
