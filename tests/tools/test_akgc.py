"""Tests for the akgc command-line driver."""

import pytest

from repro.tools.akgc import main


class TestAkgc:
    def test_relu_basic(self, capsys):
        assert main(["relu", "--shape", "32,64"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "tile sizes" in out

    def test_matmul_dump_tree(self, capsys):
        assert main(["matmul", "--shape", "64,64,64", "--dump-tree"]) == 0
        out = capsys.readouterr().out
        assert "schedule tree" in out
        assert "fractal_gemm" in out

    def test_conv_with_policy_and_cce(self, capsys):
        code = main(
            [
                "conv2d", "--shape", "1,8,12,12", "--kernel", "3",
                "--dump-cce",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "img2col" in out

    def test_manual_tile_policy(self, capsys):
        assert main(
            ["relu", "--shape", "32,64", "--tile-policy", "S_0: 8@UB, 64@UB"]
        ) == 0
        out = capsys.readouterr().out
        assert "[8, 64]" in out

    def test_bad_shape_rejected(self):
        with pytest.raises(SystemExit):
            main(["matmul", "--shape", "64,64"])  # matmul needs M,K,N

    def test_unknown_op_rejected(self):
        with pytest.raises(SystemExit):
            main(["fft", "--shape", "8"])
