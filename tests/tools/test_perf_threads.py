"""perf counters under thread contention (the compile-service regime)."""

import threading

from repro.tools import perf

THREADS = 8
ITERS = 500


class TestPerfThreadSafety:
    def test_hammered_counters_lose_nothing(self):
        """8 threads × 500 adds per stage: exact totals, exact calls.

        The pre-lock implementation's read-modify-write pair drops
        increments under this interleaving almost every run.
        """
        perf.reset()
        barrier = threading.Barrier(THREADS)

        def hammer(tid):
            barrier.wait()  # maximise overlap
            for _ in range(ITERS):
                perf.add("shared.stage", 0.001)
                perf.add(f"private.stage.{tid}", 0.002)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stages = perf.report()["stages"]
        shared = stages["shared.stage"]
        assert shared["calls"] == THREADS * ITERS
        assert abs(shared["seconds"] - THREADS * ITERS * 0.001) < 1e-6
        for i in range(THREADS):
            row = stages[f"private.stage.{i}"]
            assert row["calls"] == ITERS
            assert abs(row["seconds"] - ITERS * 0.002) < 1e-6

    def test_stage_context_manager_from_threads(self):
        perf.reset()

        def work():
            for _ in range(100):
                with perf.stage("ctx.stage"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert perf.report()["stages"]["ctx.stage"]["calls"] == THREADS * 100

    def test_reset_races_with_adds_without_corruption(self):
        """Concurrent reset() + add() never crashes or leaves bad state."""
        perf.reset()
        stop = threading.Event()

        def adder():
            while not stop.is_set():
                perf.add("racy.stage", 0.0001)

        def resetter():
            for _ in range(50):
                perf.reset()

        adders = [threading.Thread(target=adder) for _ in range(4)]
        for t in adders:
            t.start()
        resetter()
        stop.set()
        for t in adders:
            t.join()
        stages = perf.report()["stages"]
        row = stages.get("racy.stage")
        if row is not None:  # whatever survived the last reset is coherent
            assert row["calls"] >= 1
            assert row["seconds"] > 0.0
