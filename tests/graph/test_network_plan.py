"""Network plans: arena liveness, compile dedup, batched replay."""

import numpy as np
import pytest

import repro.core  # noqa: F401 - resolve graph<->core import order
from repro.core import diskcache
from repro.core.errors import NetworkPlanError
from repro.graph import compile_network, network, plan_arena
from repro.runtime.reference import numpy_dtype
from repro.tools import faultinject, perf


# -- the arena planner (pure liveness, no compilation) ------------------------


def _assert_no_live_aliasing(plan):
    """No two tensors sharing a slot may have overlapping live ranges."""
    by_slot = {}
    for key, slot in plan.slot_of.items():
        by_slot.setdefault(slot, []).append(key)
    for slot, keys in by_slot.items():
        for i, a in enumerate(keys):
            for b in keys[i + 1 :]:
                a0, a1 = plan.intervals[a]
                b0, b1 = plan.intervals[b]
                assert a1 < b0 or b1 < a0, (
                    f"{a} {plan.intervals[a]} and {b} {plan.intervals[b]} "
                    f"are simultaneously live in slot {slot}"
                )


def test_arena_chain_reuses_one_slot():
    # a -> b -> c -> d: at most two tensors live at once.
    tensors = {"a": 100, "b": 100, "c": 100, "d": 100}
    steps = [
        ([], ["a"]),
        (["a"], ["b"]),
        (["b"], ["c"]),
        (["c"], ["d"]),
    ]
    plan = plan_arena(tensors, steps)
    assert plan.naive_peak_bytes == 400
    assert len(plan.slot_bytes) == 2
    assert plan.planned_peak_bytes == 200
    _assert_no_live_aliasing(plan)


def test_arena_diamond_keeps_fanout_live():
    # a feeds both branches; it must not be recycled until the second
    # branch has read it.
    tensors = {"a": 64, "b": 64, "c": 64, "d": 64}
    steps = [
        ([], ["a"]),
        (["a"], ["b"]),
        (["a"], ["c"]),
        (["b", "c"], ["d"]),
    ]
    plan = plan_arena(tensors, steps)
    assert plan.intervals["a"] == (0, 2)
    # b is allocated at step 1 while a is still live -> distinct slots.
    assert plan.slot_of["b"] != plan.slot_of["a"]
    assert plan.planned_peak_bytes < plan.naive_peak_bytes
    _assert_no_live_aliasing(plan)


def test_arena_output_never_aliases_dying_input():
    # b's only read is the step that produces c; c must still get a
    # different buffer than b (a statement reads b while writing c).
    tensors = {"a": 32, "b": 32, "c": 32}
    steps = [([], ["a"]), (["a"], ["b"]), (["b"], ["c"])]
    plan = plan_arena(tensors, steps)
    assert plan.slot_of["c"] != plan.slot_of["b"]
    # But c can (and should) recycle a's slot, which died at step 1.
    assert plan.slot_of["c"] == plan.slot_of["a"]


def test_arena_keep_gets_dedicated_buffers():
    tensors = {"a": 16, "b": 16}
    steps = [([], ["a"]), (["a"], ["b"])]
    plan = plan_arena(tensors, steps, keep={"b"})
    assert "b" in plan.dedicated and "b" not in plan.slot_of
    assert plan.dedicated_bytes == 16


def test_arena_best_fit_prefers_smallest_slot():
    tensors = {"big": 100, "small": 10, "next": 10}
    steps = [([], ["big", "small"]), (["big", "small"], ["next"])]
    plan = plan_arena(tensors, steps)
    # next (10 bytes) should reuse small's 10-byte slot, not big's 100.
    assert plan.slot_bytes[plan.slot_of["next"]] == 10


def test_arena_rejects_malformed_schedules():
    with pytest.raises(NetworkPlanError):
        plan_arena({"a": 8}, [([], ["a"]), ([], ["a"])])
    with pytest.raises(NetworkPlanError):
        plan_arena({"a": 8, "ghost": 8}, [(["ghost"], ["a"])])
    with pytest.raises(NetworkPlanError):
        plan_arena({}, [([], ["a"])])


# -- compiled network plans ---------------------------------------------------

_PLANS = {}


def _compiled(name):
    """Compile once per session (conftest re-isolates the disk cache per
    test, but the in-process plan object stays valid)."""
    if name not in _PLANS:
        _PLANS[name] = compile_network(network(name))
    return _PLANS[name]


def _feeds(plan, seed, batch):
    rng = np.random.default_rng(seed)
    feeds = []
    for _ in range(batch):
        feed = {}
        for info in plan.inputs:
            feed[info.key] = (
                0.25 * rng.standard_normal(info.shape)
            ).astype(numpy_dtype(info.dtype))
        feeds.append(feed)
    return feeds


@pytest.mark.parametrize("name", ["alexnet_tiny", "mobilenetv2_tiny"])
def test_plan_replay_bit_identical_to_scalar_oracle(name):
    plan = _compiled(name).plan
    feeds = _feeds(plan, seed=7, batch=3)
    got = plan.replay(feeds)
    ref = plan.oracle(feeds)
    assert len(got) == len(ref) == 3
    for g, r in zip(got, ref):
        assert set(g) == set(r)
        for key in g:
            assert g[key].dtype == r[key].dtype
            assert np.array_equal(g[key], r[key]), f"{name}:{key}"


@pytest.mark.parametrize("name", ["alexnet_tiny", "mobilenetv2_tiny"])
def test_plan_arena_saves_memory_without_aliasing(name):
    plan = _compiled(name).plan
    arena = plan.arena
    assert arena.planned_peak_bytes < arena.naive_peak_bytes
    _assert_no_live_aliasing(arena)


def test_replay_outputs_survive_buffer_reuse():
    # Dedicated output buffers are reused across invocations; returned
    # arrays must be copies, so earlier results stay intact.
    plan = _compiled("alexnet_tiny").plan
    feeds = _feeds(plan, seed=11, batch=2)
    got = plan.replay(feeds)
    first = {k: v.copy() for k, v in got[0].items()}
    plan.replay(feeds[1:])  # overwrite the shared buffers
    for key in first:
        assert np.array_equal(got[0][key], first[key])


def test_compile_dedup_one_compile_per_signature():
    perf.reset()
    diskcache.reset_disk_cache_stats()
    compiled = compile_network(network("alexnet_tiny"))
    plan = compiled.plan
    # t_c3 / t_c4 share a signature: strictly fewer compiles than steps.
    assert plan.unique_subgraphs() < len(plan.steps)
    assert compiled.dedup_reuses == len(plan.steps) - plan.unique_subgraphs()
    # The reuse is visible in perf.report() as a calls counter...
    stages = perf.report()["stages"]
    assert stages["graph.dedup_reuse"]["calls"] == compiled.dedup_reuses
    # ...and the disk cache proves one compile per unique signature: a
    # recompile in the same cache dir hits for every unique subgraph.
    diskcache.reset_disk_cache_stats()
    compile_network(network("alexnet_tiny"))
    stats = diskcache.disk_cache_stats()
    assert stats["hits"] >= plan.unique_subgraphs()
    assert stats["stores"] == 0


def test_midnetwork_fault_marks_plan_degraded_and_skips_cache():
    # tiling.auto_search only fires for the pool subgraph — a
    # mid-network compile; the ladder degrades it and the plan-level
    # roll-up must reflect that.
    with faultinject.inject("tiling.auto_search:error"):
        compiled = compile_network(network("alexnet_tiny"))
    plan = compiled.plan
    assert plan.degraded
    kinds = {e.get("kind") for e in plan.resilience.events}
    assert "fallback" in kinds
    # The degraded subgraph is never disk-cached: recompiling without
    # the fault must rebuild (store) at least one program.
    diskcache.reset_disk_cache_stats()
    healthy = compile_network(network("alexnet_tiny"))
    assert not healthy.plan.degraded
    assert diskcache.disk_cache_stats()["stores"] >= 1
    # Degraded compilation still replays bit-identically (fallback
    # tilings are legal programs, just slower ones).
    feeds = _feeds(plan, seed=3, batch=1)
    got = plan.replay(feeds)
    ref = plan.oracle(feeds)
    for key in got[0]:
        assert np.array_equal(got[0][key], ref[0][key])


def test_plan_total_cycles_weights_multiplicity():
    plan = _compiled("mobilenetv2_tiny").plan
    counts = plan.multiplicities()
    cycles = plan.cycles_by_digest()
    assert sum(counts.values()) == len(plan.steps)
    assert plan.total_cycles() == sum(
        cycles[d] * n for d, n in counts.items()
    )
    assert plan.total_cycles() > max(cycles.values())


def test_unknown_network_input_raises_typed_error():
    plan = _compiled("alexnet_tiny").plan
    with pytest.raises(NetworkPlanError):
        plan.replay([{"image": np.zeros((2, 3, 15, 15), dtype=np.float16)}])
