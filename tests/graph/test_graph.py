"""Tests for the graph engine, Table 1 subgraphs and network models."""

import numpy as np
import pytest

from repro.graph import (
    alexnet,
    bert,
    extract_subgraph,
    fuse_graph,
    mobilenet_v2,
    paper_subgraphs,
    resnet50,
    ssd300,
)
from repro.ir import ops
from repro.ir.tensor import placeholder
from repro.runtime.reference import evaluate_tensors


class TestFuseGraph:
    def test_elementwise_chain_single_group(self):
        a = placeholder((8, 8), name="A")
        t = ops.relu(ops.scalar_add(a, 1.0, name="B"), name="C")
        groups = fuse_graph(t)
        assert len(groups) == 1
        assert len(groups[0]) == 2

    def test_two_convs_split(self):
        d = placeholder((1, 4, 12, 12), name="D")
        w1 = placeholder((4, 4, 3, 3), name="W1")
        w2 = placeholder((4, 4, 3, 3), name="W2")
        c1 = ops.conv2d(d, w1, padding=(1, 1), name="C1")
        r1 = ops.relu(c1, name="R1")
        c2 = ops.conv2d(r1, w2, padding=(1, 1), name="C2")
        r2 = ops.relu(c2, name="R2")
        groups = fuse_graph(r2)
        assert len(groups) == 2
        names = [[t.name for t in g] for g in groups]
        assert names[0] == ["C1", "R1"]
        assert names[1] == ["C2", "R2"]

    def test_multi_consumer_cuts_fusion(self):
        a = placeholder((8, 8), name="A")
        b = ops.scalar_add(a, 1.0, name="B")
        c = ops.relu(b, name="C")
        d = ops.abs_op(b, name="D")  # second consumer of B
        groups = fuse_graph([c, d])
        group_of = {t.name: i for i, g in enumerate(groups) for t in g}
        assert group_of["B"] != group_of["C"]
        assert group_of["B"] != group_of["D"]

    def test_group_size_cap(self):
        a = placeholder((8,), name="A")
        t = a
        for i in range(10):
            t = ops.scalar_add(t, 0.1, name=f"s{i}")
        groups = fuse_graph(t, max_group_ops=4)
        assert all(len(g) <= 4 for g in groups)

    def test_extract_semantics_preserved(self):
        a = placeholder((6, 6), name="A")
        t = ops.relu(ops.scalar_mul(a, 2.0, name="B"), name="C")
        groups = fuse_graph(t)
        spec = extract_subgraph(groups[0], "g0")
        x = np.random.default_rng(0).standard_normal((6, 6)).astype(np.float32)
        rerooted = spec.outputs[0]
        inputs = {
            p.name: x
            for g in groups[0]
            for p in []
        }
        # The extracted subgraph has exactly one placeholder input.
        placeholders = [
            t2 for t2 in rerooted.ancestors() if t2.is_placeholder
        ]
        assert len(placeholders) == 1
        got = evaluate_tensors(rerooted, {placeholders[0].name: x})["C"]
        np.testing.assert_allclose(got, np.maximum(x * 2, 0), rtol=1e-6)

    def test_signature_dedupes_identical_layers(self):
        a = placeholder((8, 8), name="A")
        r1 = ops.relu(a, name="R1")
        s1 = extract_subgraph([r1], "g0")
        b = placeholder((8, 8), name="B")
        r2 = ops.relu(b, name="R2")
        s2 = extract_subgraph([r2], "g1")
        assert s1.signature == s2.signature


class TestPaperSubgraphs:
    def test_table1_metadata(self):
        rows = paper_subgraphs()
        assert [r.n_ops for r in rows] == [6, 21, 15, 11, 9]
        assert [r.precision for r in rows] == ["FP16", "FP16", "FP32", "FP32", "FP16"]
        assert rows[0].input_shape == (16, 16, 512, 512)
        assert rows[2].input_shape == (30522, 1024)
        assert all(r.batch == 16 for r in rows)

    def test_subgraphs_build_and_count_ops(self):
        for row in paper_subgraphs():
            outs = row.build()
            computed = [
                t for o in outs for t in o.ancestors() if not t.is_placeholder
            ]
            # Dedup shared ancestors.
            unique = {id(t) for t in computed}
            assert len(unique) == row.n_ops, row.name

    def test_stencil_subgraphs_marked(self):
        rows = paper_subgraphs()
        from repro.graph.fusion import _is_heavy

        def has_stencil(row):
            outs = row.build()
            return any(
                t.op is not None and t.op.reduce_axes
                for o in outs
                for t in o.ancestors()
            )

        assert has_stencil(rows[0])  # subgraph1
        assert has_stencil(rows[4])  # subgraph5


class TestNetworks:
    @pytest.mark.parametrize(
        "factory,min_unique",
        [
            (alexnet, 5),
            (resnet50, 12),
            (mobilenet_v2, 15),
            (ssd300, 12),
        ],
    )
    def test_network_enumeration(self, factory, min_unique):
        net = factory()
        specs = net.subgraph_specs()
        assert len(specs) >= min_unique
        assert all(count >= 1 for _, count in specs)
        # Every subgraph has at most one contraction.
        from repro.graph.fusion import _is_heavy

        for spec, _ in specs:
            heavy = [
                t
                for o in spec.outputs
                for t in o.ancestors()
                if _is_heavy(t)
            ]
            assert len(set(id(t) for t in heavy)) <= 1

    def test_bert_layer_scaling(self):
        net = bert(21128)
        specs = net.subgraph_specs()
        total = sum(c for _, c in specs)
        # 24 layers' worth of kernels dominate the count.
        assert total > 100

    def test_bert_vocab_variants_differ(self):
        small = bert(21128).subgraph_specs()
        large = bert(30522).subgraph_specs()
        shapes_small = {s.signature for s, _ in small}
        shapes_large = {s.signature for s, _ in large}
        assert shapes_small != shapes_large

    def test_total_cycles_uses_backend(self):
        net = alexnet()
        calls = []

        def backend(spec):
            calls.append(spec.name)
            return 100

        total = net.total_cycles(backend)
        n_kernels = sum(c for _, c in net.subgraph_specs())
        assert total == 100 * n_kernels
        assert len(calls) == len(net.subgraph_specs())
