"""compile_network's service path must be indistinguishable from inline."""

import numpy as np
import pytest

from repro.graph import compile_network, network
from repro.service import CompileService, ServiceRequest


def test_service_path_matches_inline_compile():
    """Same plan, same programs, same replay — only the transport differs."""
    inline = compile_network(network("alexnet_tiny"))
    with CompileService(workers=4) as svc:
        served = compile_network(network("alexnet_tiny"), service=svc)
        stats = svc.stats()

    assert served.unique_compiles == inline.unique_compiles
    assert served.dedup_reuses == inline.dedup_reuses
    assert stats["submitted"] == inline.unique_compiles
    assert stats["completed"] == inline.unique_compiles

    # Program-by-program bit identity across the two transports.
    for digest, program in inline.plan.programs.items():
        assert served.plan.programs[digest].program.dump() == (
            program.program.dump()
        )
    assert served.plan.total_cycles() == inline.plan.total_cycles()

    # And the executable plans replay identically.
    rng = np.random.default_rng(11)
    feeds = {
        info.key: (0.25 * rng.standard_normal(info.shape)).astype(np.float16)
        for info in inline.plan.inputs
    }
    out_inline = inline.plan.replay([feeds])[0]
    out_served = served.plan.replay([feeds])[0]
    for name in out_inline:
        np.testing.assert_array_equal(out_served[name], out_inline[name])


def test_service_path_surfaces_typed_subgraph_errors():
    """A failing subgraph build raises the original typed error, exactly
    like the inline path (the ticket re-raises, not a wrapped blob)."""
    from repro.core.errors import CodegenError

    with CompileService(workers=2) as svc:
        # The request-level fault channel is per-request; compile_network
        # does not set one, so drive the failure through the env spec the
        # inline path also honours (process-global by design).
        import os

        os.environ["REPRO_FAULT_SPEC"] = "storage.promote:error"
        try:
            with pytest.raises(CodegenError):
                compile_network(network("alexnet_tiny"), service=svc)
        finally:
            del os.environ["REPRO_FAULT_SPEC"]
        # The service survives its workers' failures.
        healthy = svc.run(
            ServiceRequest("compile", _tiny_kernel(), name="post_fault"),
            timeout=300,
        )
    assert healthy.ok


def _tiny_kernel():
    from repro.ir import ops
    from repro.ir.tensor import placeholder

    x = placeholder((8, 8), "fp16", name="X")
    return ops.relu(x, name="out")
