"""Tests for subgraph signature identity (kernel dedup correctness)."""


from repro.graph.fusion import extract_subgraph, fuse_graph
from repro.ir import ops
from repro.ir.tensor import placeholder


def sig_of(out):
    groups = fuse_graph(out)
    return extract_subgraph(groups[-1], "g").signature


class TestSignatureIdentity:
    def test_identical_layers_match(self):
        a = placeholder((8, 8), name="A")
        b = placeholder((8, 8), name="B_completely_different_name")
        assert sig_of(ops.relu(a, name="R1")) == sig_of(ops.relu(b, name="R2"))

    def test_different_shapes_differ(self):
        a = placeholder((8, 8), name="A")
        b = placeholder((8, 16), name="B")
        assert sig_of(ops.relu(a, name="R")) != sig_of(ops.relu(b, name="R"))

    def test_different_ops_differ(self):
        a = placeholder((8, 8), name="A")
        assert sig_of(ops.relu(a, name="R")) != sig_of(ops.abs_op(a, name="R"))

    def test_conv_kernel_size_differs(self):
        """Same output shape, different convolution window: the kernels
        compile differently and must not be deduplicated."""
        d = placeholder((1, 4, 8, 8), name="D")
        w3 = placeholder((4, 4, 3, 3), name="W3")
        w5 = placeholder((4, 4, 5, 5), name="W5")
        c3 = ops.conv2d(d, w3, padding=(1, 1), name="C")
        c5 = ops.conv2d(d, w5, padding=(2, 2), name="C")
        assert c3.shape == c5.shape
        assert sig_of(c3) != sig_of(c5)

    def test_weight_shape_differs(self):
        """Same output shape, different input-channel depth."""
        d8 = placeholder((1, 8, 8, 8), name="D8")
        d16 = placeholder((1, 16, 8, 8), name="D16")
        w8 = placeholder((4, 8, 1, 1), name="W8")
        w16 = placeholder((4, 16, 1, 1), name="W16")
        assert sig_of(ops.conv2d(d8, w8, name="C")) != sig_of(
            ops.conv2d(d16, w16, name="C")
        )

    def test_scalar_constant_differs(self):
        a = placeholder((8,), name="A")
        assert sig_of(ops.scalar_add(a, 1.0, name="S")) != sig_of(
            ops.scalar_add(a, 2.0, name="S")
        )

    def test_stride_differs(self):
        d = placeholder((1, 4, 16, 16), name="D")
        w = placeholder((4, 4, 3, 3), name="W")
        c1 = ops.conv2d(d, w, stride=(1, 1), padding=(1, 1), name="C")
        c2 = ops.conv2d(d, w, stride=(2, 2), padding=(1, 1), name="C")
        assert sig_of(c1) != sig_of(c2)
