"""Tests for the ML-guided auto-tuner (Sec. 5.3)."""

import math

import pytest

from repro.autotune.model import PerformanceModel
from repro.autotune.tuner import AutoTuner, tune_tile_sizes
from repro.ir import ops
from repro.ir.tensor import placeholder


class TestPerformanceModel:
    def test_unfit_model_predicts_inf(self):
        m = PerformanceModel()
        assert m.predict([4, 4]) == float("inf")

    def test_fit_ranks_simple_function(self):
        """Cycles = 1e6 / (s0*s1): bigger tiles are better; the model must
        rank a big candidate above a small one."""
        m = PerformanceModel()
        samples = [[a, b] for a in (1, 4, 16, 64) for b in (1, 4, 16, 64)]
        cycles = [1e6 / (a * b) for a, b in samples]
        m.fit(samples, cycles)
        assert m.predict([64, 64]) < m.predict([2, 2])

    def test_better_neighbour_moves_towards_optimum(self):
        m = PerformanceModel()
        ladder = [1, 2, 4, 8, 16, 32, 64]
        samples = [[a] for a in ladder]
        cycles = [1e6 / a for a in ladder]
        m.fit(samples, cycles)
        assert m.better_neighbour([8], [ladder]) == [16]


class TestAutoTuner:
    def test_finds_optimum_of_synthetic_surface(self):
        """Cost minimised at sizes [16, 8]; the tuner should find it (or a
        near neighbour) within a small budget."""

        def measure(sizes):
            s0, s1 = sizes
            return (math.log2(s0 / 16) ** 2 + math.log2(s1 / 8) ** 2) * 100 + 10

        tuner = AutoTuner(
            measure, [64, 64], first_round=24, round_size=12, max_rounds=4, seed=1
        )
        best, history = tuner.tune()
        assert measure(best) <= 120  # within one ladder step of the optimum
        assert len(history) >= 24

    def test_infeasible_candidates_skipped(self):
        def measure(sizes):
            if sizes[0] < 8:
                return None  # infeasible
            return float(sizes[0])

        tuner = AutoTuner(measure, [64], first_round=16, seed=2)
        best, history = tuner.tune()
        assert best[0] >= 8
        assert all(r.sizes[0] >= 8 for r in history)

    def test_all_infeasible_raises(self):
        tuner = AutoTuner(lambda s: None, [8], first_round=4, seed=3)
        with pytest.raises(RuntimeError):
            tuner.tune()

    def test_probability_schedule(self):
        tuner = AutoTuner(lambda s: 1.0, [8], seed=0)
        p1 = tuner._probability(1)
        p3 = tuner._probability(3)
        assert 0.0 <= p1 <= 1.0
        assert p3 >= p1  # p grows across rounds

    def test_deterministic_given_seed(self):
        def measure(sizes):
            return float(sum(sizes))

        t1 = AutoTuner(measure, [32, 32], first_round=8, seed=7)
        t2 = AutoTuner(measure, [32, 32], first_round=8, seed=7)
        b1, h1 = t1.tune()
        b2, h2 = t2.tune()
        assert b1 == b2
        assert [r.sizes for r in h1] == [r.sizes for r in h2]


class TestTuneKernel:
    def test_tuner_not_worse_than_auto_tiling(self):
        """Sec. 5.3: the tuner 'can usually find a better tiling strategy
        than the Auto Tiling' -- it must never be worse, since Auto
        Tiling's choice is in the search space of measurements."""
        from repro.core.compiler import build

        x = placeholder((256, 128), dtype="fp16", name="X")
        r = ops.sigmoid(x, name="R")
        auto_cycles = build(r, "auto").cycles()
        best, history = tune_tile_sizes(
            r, "tuned", first_round=8, round_size=4, max_rounds=2
        )
        tuned_cycles = min(rec.cycles for rec in history)
        assert tuned_cycles <= auto_cycles * 1.01
