"""Parallel-measurer fault handling: worker death, retry, serial parity.

Worker processes inherit ``REPRO_FAULT_SPEC`` through the environment,
so the ``autotune.worker`` site fires *inside* the pool children: a
``crash`` directive hard-exits the worker (``os._exit``), which poisons
the whole ``ProcessPoolExecutor`` — exactly the failure an OOM-killed
child produces in production.
"""

import pytest

from repro.autotune.parallel import ParallelMeasurer
from repro.core import resilience
from repro.core.frontend import run_frontend
from repro.ir import ops
from repro.ir.tensor import placeholder


def _frontend():
    a = placeholder((12, 10), dtype="fp16", name="A")
    b = placeholder((10, 8), dtype="fp16", name="B")
    return run_frontend(ops.matmul(a, b, name="out"), "par_fault")


BATCH = [[4, 4], [8, 8], [2, 8], [8, 2]]


class TestWorkerDeath:
    def test_crashing_workers_degrade_to_serial_with_identical_results(
        self, monkeypatch
    ):
        frontend = _frontend()
        with ParallelMeasurer(frontend, workers=2) as healthy:
            healthy._serial_fallback = True  # force the serial oracle
            expected = healthy(BATCH)
        assert any(c is not None for c in expected)

        monkeypatch.setenv("REPRO_FAULT_SPEC", "autotune.worker:crash")
        resilience.reset_resilience_stats()
        with ParallelMeasurer(frontend, workers=2) as measurer:
            measurer.RETRY_BACKOFF_SECONDS = 0.01
            got = measurer(BATCH)
            assert measurer._serial_fallback  # pool attempts exhausted
        assert got == expected  # bit-identical to the serial tuner

        stats = resilience.resilience_stats()
        assert stats.get("autotune.pool.retry", 0) >= 1
        assert stats.get("autotune.pool.fallback:serial", 0) >= 1

    def test_injected_worker_error_also_degrades_cleanly(self, monkeypatch):
        # ``error`` mode raises a typed ReproError out of the worker task
        # (not a candidate failure): pool.map surfaces it, the measurer
        # retries and then falls back to serial.
        frontend = _frontend()
        with ParallelMeasurer(frontend, workers=2) as healthy:
            healthy._serial_fallback = True
            expected = healthy(BATCH)

        monkeypatch.setenv("REPRO_FAULT_SPEC", "autotune.worker:error")
        with ParallelMeasurer(frontend, workers=2) as measurer:
            measurer.RETRY_BACKOFF_SECONDS = 0.01
            got = measurer(BATCH)
        assert got == expected

    def test_serial_fallback_is_sticky(self, monkeypatch):
        frontend = _frontend()
        monkeypatch.setenv("REPRO_FAULT_SPEC", "autotune.worker:crash")
        with ParallelMeasurer(frontend, workers=2) as measurer:
            measurer.RETRY_BACKOFF_SECONDS = 0.01
            measurer(BATCH[:2])
            assert measurer._serial_fallback
            monkeypatch.delenv("REPRO_FAULT_SPEC")
            # A later healthy batch must not re-pay pool creation + death.
            assert measurer._pool is None
            got = measurer(BATCH)
        assert any(c is not None for c in got)

    def test_single_candidate_batches_never_touch_the_pool(self):
        frontend = _frontend()
        with ParallelMeasurer(frontend, workers=2) as measurer:
            got = measurer([BATCH[0]])
            assert measurer._pool is None
        assert got[0] is not None

    def test_healthy_pool_matches_serial(self):
        frontend = _frontend()
        with ParallelMeasurer(frontend, workers=2) as healthy:
            healthy._serial_fallback = True
            expected = healthy(BATCH)
        with ParallelMeasurer(frontend, workers=2) as measurer:
            got = measurer(BATCH)
            if measurer._serial_fallback:
                pytest.skip("no working process pool in this environment")
        assert got == expected
