"""Tests for the img2col (Eq. 1) and fractal GEMM transformations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conv.fractal import FractalGemm, gemm_shape_of
from repro.conv.img2col import (
    Img2ColParams,
    img2col_index_map,
    inverse_patch_index,
    is_convolution_statement,
    is_padding_statement,
)
from repro.ir import lower, ops
from repro.ir.tensor import placeholder


class TestEq1IndexMap:
    def test_identity_kernel_no_stride(self):
        """KH=KW=1, f=1, no padding: X row m maps back to (ho, wo)."""
        p = Img2ColParams(kh=1, kw=1, stride=(1, 1), padding=(0, 0), out_width=4, fractal=1)
        # X index (n, Mo, Ko, Mi, Ki) with m = Mo*f + Mi.
        i = img2col_index_map(p, (0, 5, 0, 0, 0))
        # m = 5 -> ho = 5 // 4 = 1, wo = 5 % 4 = 1 -> input (1, 1).
        assert i == (0, 0, 1, 1, 0)

    def test_kernel_offsets(self):
        p = Img2ColParams(kh=3, kw=3, stride=(1, 1), padding=(0, 0), out_width=4, fractal=1)
        # Ko index i2' = c1*(KH*KW) + kh*KW + kw; take kh=1, kw=2, c1=0.
        i2p = 1 * 3 + 2
        i = img2col_index_map(p, (0, 0, i2p, 0, 0))
        n, c1, hi, wi, c0 = i
        assert (c1, hi, wi) == (0, 1, 2)  # patch origin (0,0) + offset

    def test_padding_shifts_negative(self):
        p = Img2ColParams(kh=3, kw=3, stride=(1, 1), padding=(1, 1), out_width=4, fractal=1)
        i = img2col_index_map(p, (0, 0, 0, 0, 0))
        _, _, hi, wi, _ = i
        assert (hi, wi) == (-1, -1)  # first patch reads the pad border

    def test_stride_scales_origin(self):
        p = Img2ColParams(kh=1, kw=1, stride=(2, 2), padding=(0, 0), out_width=4, fractal=1)
        i = img2col_index_map(p, (0, 3, 0, 0, 0))
        _, _, hi, wi, _ = i
        # m=3 -> (ho, wo) = (0, 3) -> input (0*2, 3*2).
        assert (hi, wi) == (0, 6)

    @settings(max_examples=40, deadline=None)
    @given(
        ho=st.integers(0, 5),
        wo=st.integers(0, 3),
        kh=st.integers(0, 2),
        kw=st.integers(0, 2),
    )
    def test_forward_inverse_consistency(self, ho, wo, kh, kw):
        """Eq. 1 applied to the (m, k) of a conv instance recovers the
        input element that instance reads."""
        p = Img2ColParams(kh=3, kw=3, stride=(1, 1), padding=(0, 0), out_width=4, fractal=1)
        m, k = inverse_patch_index(p, ho, wo, c1=0, rkh=kh, rkw=kw, c0=0)
        i = img2col_index_map(p, (0, m, k, 0, 0))
        _, _, hi, wi, _ = i
        assert (hi, wi) == (ho + kh, wo + kw)


class TestFractal:
    def test_alignment_rounds_up(self):
        g = FractalGemm(20, 33, 16)
        assert g.aligned == (32, 48, 16)
        assert g.blocks == (32 // 16) * (48 // 16) * 1

    def test_no_padding_waste_when_aligned(self):
        g = FractalGemm(32, 32, 32)
        assert g.padding_waste == 0.0

    def test_padding_waste_positive_when_ragged(self):
        g = FractalGemm(17, 16, 16)
        assert 0.0 < g.padding_waste < 1.0

    def test_gemm_shape_of_matmul(self):
        a = placeholder((64, 96), name="A")
        b = placeholder((96, 32), name="B")
        mm = ops.matmul(a, b, name="MM")
        kernel = lower(mm)
        update = kernel.statements[1]
        m, k, n = gemm_shape_of(update)
        assert (m, k, n) == (64, 96, 32)

    def test_gemm_shape_of_conv(self):
        d = placeholder((2, 8, 10, 10), name="D")
        w = placeholder((16, 8, 3, 3), name="W")
        cv = ops.conv2d(d, w, name="CV")
        kernel = lower(cv)
        update = kernel.statements[1]
        m, k, n = gemm_shape_of(update)
        # M folds batch and output spatial; N is the output channels;
        # K folds input channels and the kernel window.
        assert n == 16
        assert m == 2 * 8 * 8
        assert k == 8 * 3 * 3

    def test_gemm_shape_respects_tile_extents(self):
        a = placeholder((64, 96), name="A")
        b = placeholder((96, 32), name="B")
        mm = ops.matmul(a, b, name="MM")
        kernel = lower(mm)
        update = kernel.statements[1]
        extents = dict(zip(update.iter_names, [16, 8, 96]))
        m, k, n = gemm_shape_of(update, extents)
        assert (m, k, n) == (16, 96, 8)


class TestStatementClassifiers:
    def test_conv_statement_detected(self):
        d = placeholder((1, 4, 8, 8), name="D")
        w = placeholder((8, 4, 3, 3), name="W")
        cv = ops.conv2d(d, w, name="CV")
        kernel = lower(cv)
        update = kernel.statements[1]
        assert is_convolution_statement(update)

    def test_matmul_not_convolution(self):
        a = placeholder((8, 8), name="A")
        b = placeholder((8, 8), name="B")
        mm = ops.matmul(a, b, name="MM")
        kernel = lower(mm)
        update = kernel.statements[1]
        assert not is_convolution_statement(update)

    def test_padding_statement_detected(self):
        x = placeholder((1, 1, 4, 4), name="X")
        p = ops.pad2d(x, 1, 1, name="P")
        kernel = lower(p)
        assert is_padding_statement(kernel.statements[0])

    def test_relu_not_padding(self):
        x = placeholder((4, 4), name="X")
        r = ops.relu(x, name="R")
        kernel = lower(r)
        assert not is_padding_statement(kernel.statements[0])
