"""Tests for grafting the fractal GEMM subtree into compiled kernels."""

import pytest

from repro.conv.fractal import FractalGemm, fractal_subtree, graft_fractal
from repro.core.compiler import build
from repro.ir import lower, ops
from repro.ir.tensor import placeholder
from repro.sched.tree import BandNode, MarkNode


class TestGraft:
    def test_matmul_tree_carries_fractal_mark(self):
        a = placeholder((64, 64), dtype="fp16", name="A")
        b = placeholder((64, 64), dtype="fp16", name="B")
        res = build(ops.matmul(a, b, name="MM"), "mm")
        mark = res.tree.find_mark("fractal_gemm")
        assert mark is not None
        band = mark.child
        assert isinstance(band, BandNode)
        assert band.tile_sizes == [16, 16, 16]  # the last-level block

    def test_conv_tree_carries_fractal_mark(self):
        d = placeholder((1, 8, 12, 12), dtype="fp16", name="D")
        w = placeholder((8, 8, 3, 3), dtype="fp16", name="W")
        res = build(ops.conv2d(d, w, padding=(1, 1), name="CV"), "cv")
        assert res.tree.find_mark("fractal_gemm") is not None

    def test_vector_kernel_has_no_fractal_mark(self):
        x = placeholder((32, 32), dtype="fp16", name="X")
        res = build(ops.relu(x, name="R"), "r")
        assert res.tree.find_mark("fractal_gemm") is None

    def test_fractal_subtree_shape(self):
        a = placeholder((32, 48), name="A")
        b = placeholder((48, 16), name="B")
        mm = ops.matmul(a, b, name="MM")
        kernel = lower(mm)
        update = kernel.statements[1]
        node = fractal_subtree(update, FractalGemm(32, 48, 16))
        assert isinstance(node, MarkNode)
        tile_band = node.child
        assert isinstance(tile_band, BandNode)
        assert tile_band.permutable
        point = tile_band.child
        assert isinstance(point, BandNode)
        assert point.tile_sizes is None

    def test_graft_missing_statement_raises(self):
        a = placeholder((8, 8), name="A")
        res = build(ops.relu(a, name="R"), "r")
        kernel = lower(ops.matmul(a, a, name="MM"))
        foreign = kernel.statements[1]
        with pytest.raises(ValueError):
            graft_fractal(res.tree, foreign, FractalGemm(8, 8, 8))
