"""Shared fixtures: isolate the persistent disk cache per test.

Every test gets its own ``REPRO_CACHE_DIR`` under pytest's tmpdir, so

- tests never read (or pollute) the developer's ``~/.cache/repro-akg``;
- cache-hit assertions start from a genuinely cold cache;
- tests that flip the module-level overrides (``set_cache_dir`` /
  ``set_disk_cache_enabled``, e.g. through ``akgc`` flags) are reset
  afterwards.
"""

import pytest

from repro.core import diskcache
from repro.tools import faultinject


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    diskcache.set_cache_dir(None)
    diskcache.set_disk_cache_enabled(True)
    diskcache.reset_disk_cache_stats()
    yield
    diskcache.set_cache_dir(None)
    diskcache.set_disk_cache_enabled(True)


@pytest.fixture(autouse=True)
def _no_leaked_fault_spec(monkeypatch):
    """No test inherits fault injection from the environment or a
    neighbour that forgot to clear a programmatic spec."""
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    faultinject.set_spec(None)
    yield
    faultinject.set_spec(None)
