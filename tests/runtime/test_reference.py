"""Tests for the reference executor's scalar semantics."""

import math

import numpy as np
import pytest

from repro.ir.expr import (
    BinaryOp,
    Cast,
    FloatImm,
    IntImm,
    IterVar,
    Select,
    UnaryOp,
)
from repro.ir.tensor import compute, placeholder
from repro.runtime.reference import (
    eval_expr,
    evaluate_tensors,
    numpy_dtype,
)


class TestEvalExpr:
    def test_immediates(self):
        assert eval_expr(IntImm(3), {}, {}) == 3
        assert eval_expr(FloatImm(2.5), {}, {}) == 2.5

    def test_itervar_lookup(self):
        iv = IterVar("i", 10)
        assert eval_expr(iv, {id(iv): 7}, {}) == 7

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 2, 3, 5), ("sub", 2, 3, -1), ("mul", 2, 3, 6),
            ("div", 6, 3, 2), ("max", 2, 3, 3), ("min", 2, 3, 2),
            ("pow", 2, 3, 8), ("eq", 2, 2, 1.0), ("ne", 2, 2, 0.0),
            ("lt", 2, 3, 1.0), ("le", 3, 3, 1.0), ("gt", 2, 3, 0.0),
            ("ge", 3, 3, 1.0), ("and", 1, 0, 0.0), ("or", 1, 0, 1.0),
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        e = BinaryOp(op, FloatImm(float(a)), FloatImm(float(b)))
        assert eval_expr(e, {}, {}) == expected

    @pytest.mark.parametrize(
        "op,a,expected",
        [
            ("neg", 2.0, -2.0),
            ("abs", -3.0, 3.0),
            ("relu", -1.0, 0.0),
            ("relu", 4.0, 4.0),
            ("floor", 2.7, 2.0),
            ("ceil", 2.1, 3.0),
            ("not", 0.0, 1.0),
        ],
    )
    def test_unary_ops(self, op, a, expected):
        e = UnaryOp(op, FloatImm(a))
        assert eval_expr(e, {}, {}) == expected

    def test_transcendentals(self):
        assert eval_expr(UnaryOp("exp", FloatImm(1.0)), {}, {}) == pytest.approx(math.e)
        assert eval_expr(UnaryOp("rsqrt", FloatImm(4.0)), {}, {}) == pytest.approx(0.5)
        assert eval_expr(UnaryOp("sigmoid", FloatImm(0.0)), {}, {}) == pytest.approx(0.5)

    def test_select_is_lazy(self):
        """The untaken branch must not be evaluated (guards OOB reads)."""
        t = placeholder((2,), name="T")
        buffers = {"T": np.array([1.0, 2.0], dtype=np.float32)}
        iv = IterVar("i", 2)
        # Condition false: reads T[i] only when i < 2; here use i = 5 with a
        # guard that is false, so the read would crash if eager.
        guarded = Select(FloatImm(0.0), t[iv], FloatImm(-1.0))
        assert eval_expr(guarded, {id(iv): 5}, buffers) == -1.0

    def test_cast_rounds_to_fp16(self):
        e = Cast("fp16", FloatImm(1.0002441))
        got = eval_expr(e, {}, {})
        assert got == float(np.float16(1.0002441))

    def test_numpy_dtype_mapping(self):
        assert numpy_dtype("fp16") == np.float16
        assert numpy_dtype("int32") == np.int32
        with pytest.raises(ValueError):
            numpy_dtype("bf16")


class TestReduceSemantics:
    def test_max_reduction(self):
        from repro.ir.tensor import reduce_axis, te_max

        x = placeholder((3, 5), name="X")
        k = reduce_axis((0, 5), "k")
        m = compute((3,), lambda i: te_max(x[i, k], axis=k), name="M")
        xv = np.random.default_rng(0).standard_normal((3, 5)).astype(np.float32)
        got = evaluate_tensors(m, {"X": xv})["M"]
        np.testing.assert_allclose(got, xv.max(axis=1))

    def test_min_reduction(self):
        from repro.ir.tensor import reduce_axis, te_min

        x = placeholder((4, 3), name="X")
        k = reduce_axis((0, 3), "k")
        m = compute((4,), lambda i: te_min(x[i, k], axis=k), name="M")
        xv = np.random.default_rng(1).standard_normal((4, 3)).astype(np.float32)
        got = evaluate_tensors(m, {"X": xv})["M"]
        np.testing.assert_allclose(got, xv.min(axis=1))

    def test_prod_reduction(self):
        from repro.ir.expr import Reduce
        from repro.ir.tensor import reduce_axis

        x = placeholder((2, 3), name="X")
        k = reduce_axis((0, 3), "k")
        p = compute((2,), lambda i: Reduce("prod", x[i, k], [k]), name="P")
        xv = np.arange(1, 7, dtype=np.float32).reshape(2, 3)
        got = evaluate_tensors(p, {"X": xv})["P"]
        np.testing.assert_allclose(got, xv.prod(axis=1))
