"""Vectorized-vs-scalar engine equivalence: bit-exact or it doesn't ship.

Every assertion here uses exact array equality (``np.array_equal``), not
``allclose``: the vectorized engine is specified to reproduce the scalar
oracle bit-for-bit on fp16/fp32/int32, including reduction accumulation
order and the lazy-``Select`` out-of-bounds guarantee.
"""

import numpy as np
import pytest

from repro.ir import ops
from repro.ir.expr import BinaryOp, Select
from repro.ir.lower import lower
from repro.ir.tensor import compute, placeholder, reduce_axis, te_max, te_sum
from repro.runtime.reference import (
    AUTO_VECTORIZE_MIN_INSTANCES,
    evaluate_kernel,
)
from repro.runtime.vectorized import exec_stats, reset_exec_stats

RNG = np.random.default_rng(7)


def rand(shape, dtype="fp32"):
    if dtype == "int32":
        return RNG.integers(-5, 6, size=shape).astype(np.int32)
    np_dtype = {"fp16": np.float16, "fp32": np.float32}[dtype]
    return RNG.standard_normal(shape).astype(np_dtype)


def assert_engines_equal(outputs, inputs, expect_fallbacks=0):
    """Lower once, run all three engines, require exact equality."""
    kernel = lower(outputs)
    scalar = evaluate_kernel(kernel, inputs, engine="scalar")
    reset_exec_stats()
    vectorized = evaluate_kernel(kernel, inputs, engine="vectorized")
    stats = exec_stats()
    auto = evaluate_kernel(kernel, inputs, engine="auto")
    for name in scalar:
        assert np.array_equal(scalar[name], vectorized[name]), name
        assert np.array_equal(scalar[name], auto[name]), name
        assert scalar[name].dtype == vectorized[name].dtype, name
    assert stats["scalar_fallback"] == expect_fallbacks, stats
    return scalar


class TestExampleKernels:
    """Every operator in the catalog, vectorized without fallback."""

    def test_matmul_fp16(self):
        a, b = placeholder((9, 13), "fp16", "A"), placeholder((13, 7), "fp16", "B")
        assert_engines_equal(
            ops.matmul(a, b), {"A": rand((9, 13), "fp16"), "B": rand((13, 7), "fp16")}
        )

    def test_matmul_fp32(self):
        a, b = placeholder((16, 16), "fp32", "A"), placeholder((16, 16), "fp32", "B")
        assert_engines_equal(
            ops.matmul(a, b), {"A": rand((16, 16)), "B": rand((16, 16))}
        )

    def test_matmul_int32(self):
        a = placeholder((8, 8), "int32", "A")
        b = placeholder((8, 8), "int32", "B")
        assert_engines_equal(
            ops.matmul(a, b),
            {"A": rand((8, 8), "int32"), "B": rand((8, 8), "int32")},
        )

    def test_batched_matmul(self):
        a = placeholder((3, 6, 5), "fp16", "A")
        b = placeholder((3, 5, 4), "fp16", "B")
        assert_engines_equal(
            ops.batched_matmul(a, b),
            {"A": rand((3, 6, 5), "fp16"), "B": rand((3, 5, 4), "fp16")},
        )

    def test_conv2d_padded(self):
        d = placeholder((1, 3, 9, 9), "fp16", "D")
        w = placeholder((4, 3, 3, 3), "fp16", "W")
        assert_engines_equal(
            ops.conv2d(d, w, stride=(1, 1), padding=(1, 1)),
            {"D": rand((1, 3, 9, 9), "fp16"), "W": rand((4, 3, 3, 3), "fp16")},
        )

    def test_conv2d_strided(self):
        d = placeholder((1, 2, 10, 10), "fp16", "D")
        w = placeholder((2, 2, 3, 3), "fp16", "W")
        assert_engines_equal(
            ops.conv2d(d, w, stride=(2, 2), padding=(1, 1)),
            {"D": rand((1, 2, 10, 10), "fp16"), "W": rand((2, 2, 3, 3), "fp16")},
        )

    def test_depthwise_conv2d(self):
        d = placeholder((1, 3, 8, 8), "fp16", "D")
        w = placeholder((3, 3, 3), "fp16", "W")
        assert_engines_equal(
            ops.depthwise_conv2d(d, w, padding=(1, 1)),
            {"D": rand((1, 3, 8, 8), "fp16"), "W": rand((3, 3, 3), "fp16")},
        )

    def test_pools(self):
        d = placeholder((1, 2, 8, 8), "fp32", "D")
        assert_engines_equal(ops.max_pool2d(d), {"D": rand((1, 2, 8, 8))})
        assert_engines_equal(ops.avg_pool2d(d), {"D": rand((1, 2, 8, 8))})

    def test_batch_norm(self):
        x = placeholder((2, 3, 4, 4), "fp32", "X")
        total, sq = ops.batch_norm_reduce(x)
        assert_engines_equal([total, sq], {"X": rand((2, 3, 4, 4))})
        mean = placeholder((3,), "fp32", "MU")
        var = placeholder((3,), "fp32", "VAR")
        gamma = placeholder((3,), "fp32", "G")
        beta = placeholder((3,), "fp32", "B")
        assert_engines_equal(
            ops.batch_norm_update(x, mean, var, gamma, beta),
            {
                "X": rand((2, 3, 4, 4)),
                "MU": rand((3,)),
                "VAR": np.abs(rand((3,))) + np.float32(0.5),
                "G": rand((3,)),
                "B": rand((3,)),
            },
        )

    def test_gelu_layer_norm_softmax(self):
        x = placeholder((6, 16), "fp32", "X")
        assert_engines_equal(ops.gelu(x), {"X": rand((6, 16))})
        assert_engines_equal(ops.softmax_last_axis(x), {"X": rand((6, 16))})
        gamma = placeholder((16,), "fp32", "G")
        beta = placeholder((16,), "fp32", "B")
        assert_engines_equal(
            ops.layer_norm(x, gamma, beta),
            {"X": rand((6, 16)), "G": rand((16,)), "B": rand((16,))},
        )

    def test_transpose_pad_cast_one_hot(self):
        x = placeholder((5, 9), "fp32", "X")
        assert_engines_equal(ops.transpose(x, (1, 0)), {"X": rand((5, 9))})
        assert_engines_equal(ops.cast(x, "fp16"), {"X": rand((5, 9))})
        d = placeholder((1, 2, 5, 5), "fp16", "D")
        assert_engines_equal(ops.pad2d(d, 2, 1), {"D": rand((1, 2, 5, 5), "fp16")})
        idx = placeholder((7,), "int32", "I")
        assert_engines_equal(
            ops.one_hot(idx, 5),
            {"I": RNG.integers(0, 5, 7).astype(np.int32)},
        )

    def test_embedding_lookup_falls_back(self):
        """Data-dependent indexing is unclassifiable: scalar fallback,
        same results, counted."""
        table = placeholder((10, 4), "fp32", "T")
        idx = placeholder((6,), "int32", "I")
        reset_exec_stats()
        assert_engines_equal(
            ops.embedding_lookup(table, idx),
            {"T": rand((10, 4)), "I": RNG.integers(0, 10, 6).astype(np.int32)},
            expect_fallbacks=1,
        )
        assert exec_stats()["fallback_reasons"] == {"data-dependent indexing": 1}


class TestEdgeCases:
    def test_zero_extent_reduce_axis(self):
        x = placeholder((4, 3), "fp32", "X")
        k = reduce_axis((0, 0), "k")
        out = compute((4,), lambda i: te_sum(x[i, k], axis=k), name="Z")
        res = assert_engines_equal(out, {"X": rand((4, 3))})
        assert np.array_equal(res["Z"], np.zeros(4, np.float32))

    def test_select_padding_at_boundaries(self):
        """Guarded reads one past each edge: the guard keeps every lane
        in bounds, so no fallback and exact zero padding."""
        x = placeholder((5,), "fp32", "X")
        out = compute(
            (7,),
            lambda i: Select(
                BinaryOp(
                    "and",
                    BinaryOp("ge", i, 1),
                    BinaryOp("le", i, 5),
                ),
                x[i - 1],
                0.0,
            ),
            name="P",
        )
        assert_engines_equal(out, {"X": rand((5,))})

    def test_guarded_oob_true_branch_matches_scalar_error(self):
        """If the guard *fails* to protect an OOB read, the vectorized
        engine must not silently produce values: it falls back to the
        scalar interpreter, which raises exactly as it always did."""
        x = placeholder((4,), "fp32", "X")
        out = compute(
            (4,),
            lambda i: Select(BinaryOp("ge", i, 0), x[i + 100], 0.0),
            name="BAD",
        )
        kernel = lower(out)
        xv = rand((4,))
        with pytest.raises(IndexError):
            evaluate_kernel(kernel, {"X": xv}, engine="scalar")
        with pytest.raises(IndexError):
            evaluate_kernel(kernel, {"X": xv}, engine="vectorized")

    def test_non_unit_stride_access(self):
        x = placeholder((11,), "fp32", "X")
        out = compute((5,), lambda i: x[2 * i + 1], name="S")
        assert_engines_equal(out, {"X": rand((11,))})

    def test_reversed_access(self):
        x = placeholder((6,), "fp32", "X")
        out = compute((6,), lambda i: x[5 - i], name="R")
        assert_engines_equal(out, {"X": rand((6,))})

    def test_diagonal_gather(self):
        x = placeholder((6, 6), "fp32", "X")
        out = compute((6,), lambda i: x[i, i], name="DIAG")
        assert_engines_equal(out, {"X": rand((6, 6))})

    def test_negative_index_wraps_like_numpy(self):
        """Unguarded negative indices keep raw numpy wrap-around in both
        engines (the scalar oracle indexes numpy arrays directly)."""
        x = placeholder((6,), "fp32", "X")
        out = compute((4,), lambda i: x[i - 2], name="W")
        assert_engines_equal(out, {"X": rand((6,))})

    def test_fp16_cast_chain(self):
        x = placeholder((8, 8), "fp32", "X")
        out = ops.cast(ops.gelu(ops.cast(x, "fp16")), "fp32")
        assert_engines_equal(out, {"X": rand((8, 8))})

    def test_max_reduction_fp16_rounding(self):
        """One-shot fmax fast path vs per-step scalar max with fp16
        accumulator casts must agree exactly."""
        x = placeholder((5, 64), "fp16", "X")
        k = reduce_axis((0, 64), "k")
        out = compute((5,), lambda i: te_max(x[i, k], axis=k), name="M")
        assert_engines_equal(out, {"X": rand((5, 64), "fp16")})

    def test_engine_validation(self):
        x = placeholder((4,), "fp32", "X")
        kernel = lower(ops.relu(x))
        with pytest.raises(ValueError):
            evaluate_kernel(kernel, {"X": rand((4,))}, engine="gpu")

    def test_auto_routes_small_statements_to_scalar(self):
        shape = (2, 2)
        assert shape[0] * shape[1] < AUTO_VECTORIZE_MIN_INSTANCES
        x = placeholder(shape, "fp32", "X")
        kernel = lower(ops.relu(x))
        reset_exec_stats()
        evaluate_kernel(kernel, {"X": rand(shape)}, engine="auto")
        stats = exec_stats()
        assert stats["scalar_small"] == 1
        assert stats["vectorized"] == 0

    def test_perf_report_surfaces_exec_counters(self):
        from repro.tools import perf

        x = placeholder((16, 16), "fp32", "X")
        kernel = lower(ops.relu(x))
        reset_exec_stats()
        evaluate_kernel(kernel, {"X": rand((16, 16))}, engine="vectorized")
        report = perf.report()
        assert report["exec"]["vectorized"] >= 1
        assert "exec engine:" in perf.format_report()
