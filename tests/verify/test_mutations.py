"""The mutation harness: every seeded corruption must be rejected.

A verifier that passes everything is worse than none — it launders
broken schedules as "verified".  Each mutation here models a real pass
bug (dropped sync flag, reordered statements, off-by-one tile box,
aliased arena slot); the corresponding checker must raise the typed
:class:`~repro.core.errors.VerificationError`, and the CLI must turn it
into exit code 13.
"""

import pytest

import repro.core  # noqa: F401 - resolve graph<->core import order
from repro.core.compiler import build
from repro.core.errors import EXIT_CODES, VerificationError
from repro.graph import compile_network, network
from repro.service.wire import demo_kernel
from repro.tools import faultinject
from repro.tools.akgc import main as akgc_main
from repro.verify import verify_network_plan, verify_result
from repro.verify.mutate import alias_arena, seeded_mutations

CATALOG = [
    ("relu", [8, 32]),
    ("add", [8, 32]),
    ("softmax", [8, 32]),
    ("matmul", [16, 16, 16]),
    ("conv2d", [1, 4, 10, 10]),
]


@pytest.mark.parametrize("op,shape", CATALOG)
def test_every_seeded_mutant_is_killed(op, shape):
    result = build(demo_kernel(op, shape), f"mutate_{op}")
    mutants = seeded_mutations(result)
    assert mutants, f"no mutation applied to {op}"
    for name, mutant in mutants:
        with pytest.raises(VerificationError):
            verify_result(mutant)
    # Mutation worked on deep copies: the original still verifies clean.
    assert verify_result(result)["sync"]


def test_aliased_arena_slot_is_rejected():
    compiled = compile_network(network("alexnet_tiny"))
    mutant = alias_arena(compiled.plan)
    assert mutant is not None, "no aliasable slot pair in alexnet_tiny"
    with pytest.raises(VerificationError):
        verify_network_plan(mutant)
    # The pristine plan still passes.
    assert verify_network_plan(compiled.plan)["arena"]


def test_verification_failure_exits_13(capsys):
    faultinject.set_spec("verify.schedule:error")
    try:
        code = akgc_main(
            ["matmul", "--shape", "16,16,16", "--no-disk-cache", "--verify"]
        )
    finally:
        faultinject.set_spec(None)
    assert code == EXIT_CODES[VerificationError] == 13
    err = capsys.readouterr().err
    assert "VerificationError" in err


def test_without_verify_flag_fault_site_never_fires(capsys):
    faultinject.set_spec("verify.schedule:error")
    try:
        code = akgc_main(["matmul", "--shape", "16,16,16", "--no-disk-cache"])
    finally:
        faultinject.set_spec(None)
    assert code == 0
