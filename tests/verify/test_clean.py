"""The verifier must pass every artifact the real pipeline produces.

Zero false positives is the verifier's contract: a checker that cries
wolf on healthy schedules trains everyone to ignore it.  These tests
sweep the demo-kernel catalog (concrete and symbolic-batch), a whole
network plan, and the cache/wire surfaces that carry the
``verified_clean`` flag.
"""

import pytest

import repro.core  # noqa: F401 - resolve graph<->core import order
from repro.core import diskcache
from repro.core.compiler import AkgOptions, build
from repro.graph import compile_network, network
from repro.service.wire import demo_kernel
from repro.verify import verify_network_plan, verify_result

CATALOG = [
    ("relu", [8, 32], {}),
    ("add", [8, 32], {}),
    ("softmax", [8, 32], {}),
    ("matmul", [16, 16, 16], {}),
    ("conv2d", [1, 4, 10, 10], {}),
]


@pytest.mark.parametrize("op,shape,kwargs", CATALOG)
def test_catalog_kernel_verifies_clean(op, shape, kwargs):
    result = build(demo_kernel(op, shape, **kwargs), f"verify_{op}")
    ran = verify_result(result)
    assert ran == {"schedule": True, "bounds": True, "sync": True}


@pytest.mark.parametrize(
    "op,shape,bmax",
    [("relu", [8, 32], 8), ("matmul", [16, 16, 16], 16), ("conv2d", [1, 4, 10, 10], 4)],
)
def test_symbolic_batch_kernel_verifies_clean(op, shape, bmax):
    result = build(
        demo_kernel(op, shape, batch_max=bmax), f"verify_sym_{op}"
    )
    assert result.kernel.shape_generic
    ran = verify_result(result)
    assert ran == {"schedule": True, "bounds": True, "sync": True}


def test_network_plan_verifies_clean():
    compiled = compile_network(network("alexnet_tiny"))
    ran = verify_network_plan(compiled.plan)
    assert ran == {"arena": True, "subgraphs": True}
    assert compiled.plan.unique_subgraphs() >= 1


def test_build_with_verify_marks_result_and_cache_entry():
    opts = AkgOptions(verify=True)
    result = build(demo_kernel("relu", [8, 32]), "verify_flag", options=opts)
    assert result.verified_clean
    # A warm hit returns the already-verified entry without re-storing.
    # (Two hits: the frontend and program cache layers each answer.)
    diskcache.reset_disk_cache_stats()
    again = build(demo_kernel("relu", [8, 32]), "verify_flag", options=opts)
    assert again.verified_clean
    stats = diskcache.disk_cache_stats()
    assert stats["hits"] == 2 and stats["stores"] == 0


def test_verify_flag_does_not_change_the_cache_key():
    build(demo_kernel("relu", [8, 32]), "verify_keyshare")
    diskcache.reset_disk_cache_stats()
    # Same program, verify on: must *hit* the unverified entry (the
    # fingerprint excludes ``verify``), verify it, and re-store it with
    # the flag so later verified requests are free.
    result = build(
        demo_kernel("relu", [8, 32]),
        "verify_keyshare",
        options=AkgOptions(verify=True),
    )
    stats = diskcache.disk_cache_stats()
    assert stats["hits"] == 2 and stats["stores"] == 1
    assert result.verified_clean
