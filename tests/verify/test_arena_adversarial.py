"""Arena planner vs. the aliasing oracle on adversarial liveness graphs.

:func:`repro.graph.plan.plan_arena` is pure liveness arithmetic, so it
can be pitted directly against the independent checker in
:mod:`repro.verify.arena` — the planner proposes, the oracle disposes.
The graphs here are the shapes that historically break best-fit reuse
planners: diamonds (two simultaneously-live branches off one producer)
and wide fan-outs (one tensor read by many later steps while siblings
come and go).  Sizes scale with a symbolic batch dimension's declared
maximum, mirroring how network plans size buffers for shape-generic
subgraphs (clamped replays never exceed the max, so slot bytes at the
max cover every binding).
"""

import pytest

import repro.core  # noqa: F401 - resolve graph<->core import order
from repro.core.errors import VerificationError
from repro.graph import plan_arena
from repro.ir.tensor import SymDim
from repro.verify import check_arena_assignment

BATCH = SymDim("N", 8)
ROW_BYTES = 64


def _nbytes(rows):
    """Buffer size for ``rows`` rows of a symbolic-batch tensor: sized
    at the declared maximum, as the network planner does."""
    return BATCH.max * rows * ROW_BYTES


def test_diamond_plan_passes_the_oracle():
    #      a
    #     / \
    #    b   c     (b and c simultaneously live)
    #     \ /
    #      d
    tensors = {"a": _nbytes(4), "b": _nbytes(2), "c": _nbytes(2), "d": _nbytes(1)}
    steps = [
        ([], ["a"]),
        (["a"], ["b"]),
        (["a"], ["c"]),
        (["b", "c"], ["d"]),
    ]
    plan = plan_arena(tensors, steps, keep={"d"})
    derived = check_arena_assignment(tensors, steps, plan, keep={"d"})
    # The two branches overlap (both live at step 3) and must not share.
    assert plan.slot_of["b"] != plan.slot_of["c"]
    assert derived["b"] == (1, 3) and derived["c"] == (2, 3)


def test_fanout_plan_passes_the_oracle():
    # One hub read by every later step, siblings born and dying around it.
    tensors = {
        "hub": _nbytes(8),
        "t1": _nbytes(2),
        "t2": _nbytes(2),
        "t3": _nbytes(2),
        "out": _nbytes(1),
    }
    steps = [
        ([], ["hub"]),
        (["hub"], ["t1"]),
        (["hub", "t1"], ["t2"]),
        (["hub", "t2"], ["t3"]),
        (["hub", "t3"], ["out"]),
    ]
    plan = plan_arena(tensors, steps, keep={"out"})
    derived = check_arena_assignment(tensors, steps, plan, keep={"out"})
    assert derived["hub"] == (0, 4)
    # The hub is live throughout: nothing may share its slot.
    hub_slot = plan.slot_of["hub"]
    sharers = [k for k, s in plan.slot_of.items() if s == hub_slot]
    assert sharers == ["hub"]
    # The dying siblings may recycle: the arena beats dedicated buffers.
    assert plan.arena_bytes < sum(tensors.values())


def test_oracle_rejects_forced_aliasing():
    tensors = {"a": 100, "b": 100, "c": 100}
    steps = [([], ["a"]), (["a"], ["b"]), (["a", "b"], ["c"])]
    plan = plan_arena(tensors, steps, keep={"c"})
    assert plan.slot_of["a"] != plan.slot_of["b"]
    plan.slot_of["b"] = plan.slot_of["a"]  # a and b overlap at step 1
    with pytest.raises(VerificationError, match="aliases"):
        check_arena_assignment(tensors, steps, plan, keep={"c"})


def test_oracle_rejects_undersized_slot():
    tensors = {"a": 100, "b": 50}
    steps = [([], ["a"]), (["a"], ["b"])]
    plan = plan_arena(tensors, steps, keep={"b"})
    plan.slot_bytes[plan.slot_of["a"]] = 99
    with pytest.raises(VerificationError, match="does not fit"):
        check_arena_assignment(tensors, steps, plan, keep={"b"})


def test_oracle_rejects_stale_recorded_interval():
    tensors = {"a": 100, "b": 100}
    steps = [([], ["a"]), (["a"], ["b"])]
    plan = plan_arena(tensors, steps, keep={"b"})
    plan.intervals["a"] = (0, 0)  # derived liveness is (0, 1)
    with pytest.raises(VerificationError, match="disagrees"):
        check_arena_assignment(tensors, steps, plan, keep={"b"})


def test_oracle_rejects_kept_tensor_in_recycled_slot():
    tensors = {"a": 100, "b": 100}
    steps = [([], ["a"]), (["a"], ["b"])]
    plan = plan_arena(tensors, steps, keep={"b"})
    plan.slot_of["b"] = plan.slot_of["a"]
    with pytest.raises(VerificationError, match="kept tensor"):
        check_arena_assignment(tensors, steps, plan, keep={"b"})
