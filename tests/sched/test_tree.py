"""Tests for schedule-tree structure, surgery and cloning."""

import pytest

from repro.poly.affine import var
from repro.poly.sets import BasicSet, Space
from repro.sched.tree import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    SequenceNode,
    SetNode,
    clone_tree,
    find_parent,
    insert_mark_above,
    replace_child,
)


def small_tree():
    band_a = BandNode({"S0": [var("i")]}, LeafNode())
    band_b = BandNode({"S1": [var("j")]}, LeafNode())
    seq = SequenceNode([FilterNode(["S0"], band_a), FilterNode(["S1"], band_b)])
    dom = DomainNode(
        {
            "S0": BasicSet.from_bounds(Space("S0", ["i"]), {"i": (0, 7)}),
            "S1": BasicSet.from_bounds(Space("S1", ["j"]), {"j": (0, 3)}),
        },
        seq,
    )
    return dom, band_a, band_b, seq


class TestStructure:
    def test_statements_enumeration(self):
        dom, *_ = small_tree()
        assert dom.statements() == ["S0", "S1"]

    def test_band_row_alignment_enforced(self):
        with pytest.raises(ValueError):
            BandNode({"S0": [var("i")], "S1": [var("j"), var("k")]})

    def test_sequence_children_must_be_filters(self):
        with pytest.raises(TypeError):
            SequenceNode([LeafNode()])

    def test_set_children_must_be_filters(self):
        with pytest.raises(TypeError):
            SetNode([BandNode({"S0": [var("i")]})])

    def test_tile_sizes_arity_checked(self):
        with pytest.raises(ValueError):
            BandNode({"S0": [var("i")]}, tile_sizes=[4, 4])

    def test_find_mark(self):
        dom, band_a, *_ = small_tree()
        insert_mark_above(dom, band_a, "local_UB")
        assert dom.find_mark("local_UB") is not None
        assert dom.find_mark("absent") is None

    def test_render_contains_labels(self):
        dom, *_ = small_tree()
        text = dom.render()
        assert "Domain" in text and "Sequence" in text and "Band" in text


class TestSurgery:
    def test_find_parent(self):
        dom, band_a, band_b, seq = small_tree()
        assert find_parent(dom, seq) is dom
        assert find_parent(dom, dom) is None

    def test_replace_child(self):
        dom, band_a, band_b, seq = small_tree()
        new = LeafNode()
        filt = seq.children[0]
        replace_child(filt, band_a, new)
        assert filt.child is new

    def test_replace_child_missing_raises(self):
        dom, band_a, *_ = small_tree()
        with pytest.raises(ValueError):
            replace_child(dom, band_a, LeafNode())

    def test_insert_mark_above_root_rejected(self):
        dom, *_ = small_tree()
        with pytest.raises(ValueError):
            insert_mark_above(dom, dom, "m")


class TestClone:
    def test_clone_is_deep_for_structure(self):
        dom, band_a, *_ = small_tree()
        copy = clone_tree(dom)
        # Mutating the copy must not affect the original.
        mark = insert_mark_above(copy, copy.find_all(BandNode)[0], "skipped")
        assert dom.find_mark("skipped") is None
        assert copy.find_mark("skipped") is not None

    def test_clone_preserves_band_attributes(self):
        band = BandNode(
            {"S0": [var("i"), var("j")]},
            LeafNode(),
            permutable=True,
            coincident=[True, False],
            tile_sizes=[8, 4],
        )
        dom = DomainNode(
            {"S0": BasicSet.from_bounds(Space("S0", ["i", "j"]), {"i": (0, 7), "j": (0, 7)})},
            FilterNode(["S0"], band),
        )
        copy = clone_tree(dom)
        band_c = copy.find_all(BandNode)[0]
        assert band_c.permutable
        assert band_c.coincident == [True, False]
        assert band_c.tile_sizes == [8, 4]

    def test_clone_extension_node(self):
        from repro.poly.maps import BasicMap

        ext = ExtensionNode(
            {"S9": BasicMap(Space("T", ["o0"]), Space("S9", ["i"]), [])},
            LeafNode(),
        )
        dom = DomainNode(
            {"S0": BasicSet.from_bounds(Space("S0", ["i"]), {"i": (0, 1)})},
            FilterNode(["S0"], ext),
        )
        copy = clone_tree(dom)
        assert copy.find_all(ExtensionNode)
