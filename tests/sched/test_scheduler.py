"""Tests for the Pluto-style scheduler and legality checking."""

import pytest

from repro.ir import lower, ops
from repro.ir.expr import FloatImm
from repro.ir.lower import PolyStatement, TensorAccess
from repro.ir.tensor import Tensor, compute, placeholder, reduce_axis, te_sum
from repro.poly.affine import AffineExpr, var
from repro.sched.clustering import conservative_clustering
from repro.sched.deps import compute_dependences
from repro.sched.scheduler import PolyScheduler, SchedulerOptions, check_legality
from repro.sched.tree import (
    BandNode,
    DomainNode,
    FilterNode,
    LeafNode,
    SequenceNode,
)


def schedule(outputs, name="k"):
    kernel = lower(outputs, name)
    deps = compute_dependences(kernel)
    tree = PolyScheduler().schedule_kernel(kernel, deps)
    return kernel, deps, tree


class TestClustering:
    def test_running_example_clusters(self):
        """The Fig. 3 pattern: bias-add, conv, abs, relu."""
        H, W, KH, KW = 12, 12, 3, 3
        a = placeholder((H, W), name="A")
        a1 = ops.scalar_add(a, 1.0, name="A1")
        b = placeholder((KH, KW), name="B")
        kh = reduce_axis((0, KH), "kh")
        kw = reduce_axis((0, KW), "kw")
        c = compute(
            (H - KH + 1, W - KW + 1),
            lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
            name="C",
        )
        c1 = ops.abs_op(c, name="C1")
        c2 = ops.relu(c1, name="C2")
        kernel = lower(c2)
        deps = compute_dependences(kernel)
        clustering = conservative_clustering(kernel, deps)
        # Conservative clustering groups {S1,S2} (init+update); the stencil
        # dependence keeps S0 out of the live-out group.
        groups = [[s.stmt_id for s in c] for c in clustering.clusters]
        assert ["S1", "S2"] in groups
        s0_cluster = clustering.cluster_of("S0")
        assert s0_cluster not in clustering.live_out
        # Elementwise followers join the live-out group.
        assert clustering.cluster_of("S3") in clustering.live_out
        assert clustering.cluster_of("S4") in clustering.live_out
        assert clustering.cluster_of("S2") in clustering.live_out

    def test_pointwise_chain_single_live_out_group(self):
        a = placeholder((8, 8), name="A")
        b = ops.scalar_add(a, 1.0, name="B")
        c = ops.relu(b, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        clustering = conservative_clustering(kernel, deps)
        assert len(clustering.live_out) == 2  # both clusters merged
        assert not clustering.intermediate_indices

    def test_rank_change_is_barrier(self):
        x = placeholder((4, 8), name="X")
        k = reduce_axis((0, 8), "k")
        s = compute((4,), lambda i: te_sum(x[i, k], axis=k), name="S")
        out = compute((4,), lambda i: s[i] * 2, name="OUT")
        kernel = lower(out)
        deps = compute_dependences(kernel)
        clustering = conservative_clustering(kernel, deps)
        # The reduction group and the elementwise group share aligned dim i
        # with distance 0, so they may fuse; verify classification ran and
        # produced a live-out group containing OUT.
        assert clustering.cluster_of(kernel.statements[-1].stmt_id) in clustering.live_out


class TestScheduler:
    def test_elementwise_identity_schedule(self):
        a = placeholder((8, 8), name="A")
        b = ops.scalar_add(a, 1.0, name="B")
        kernel, deps, tree = schedule(b)
        bands = tree.find_all(BandNode)
        assert bands
        assert bands[0].coincident == [True, True]  # fully parallel
        assert not check_legality(tree, deps)

    def test_matmul_schedule_legal(self):
        a = placeholder((6, 6), name="A")
        b = placeholder((6, 6), name="B")
        c = ops.matmul(a, b, name="C")
        kernel, deps, tree = schedule(c)
        assert not check_legality(tree, deps)
        # Outer (i, j) rows are coincident; the k band is not.
        outer = tree.find_all(BandNode)[0]
        assert outer.coincident == [True, True]

    def test_running_example_schedule_legal(self):
        a = placeholder((10, 10), name="A")
        a1 = ops.scalar_add(a, 1.0, name="A1")
        b = placeholder((3, 3), name="B")
        kh = reduce_axis((0, 3), "kh")
        kw = reduce_axis((0, 3), "kw")
        c = compute(
            (8, 8),
            lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
            name="C",
        )
        c2 = ops.relu(c, name="C2")
        kernel, deps, tree = schedule(c2)
        assert not check_legality(tree, deps)

    def test_initial_tree_matches_textual_order(self):
        a = placeholder((4,), name="A")
        b = ops.scalar_add(a, 1.0, name="B")
        c = ops.relu(b, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        tree = PolyScheduler().initial_tree(kernel)
        assert not check_legality(tree, deps)
        seq = tree.find_all(SequenceNode)[0]
        assert [f.stmt_ids[0] for f in seq.children] == ["S0", "S1"]

    def test_reversed_order_detected_illegal(self):
        a = placeholder((4,), name="A")
        b = ops.scalar_add(a, 1.0, name="B")
        c = ops.relu(b, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        s0, s1 = kernel.statements
        # Build a tree scheduling the consumer before the producer.
        mk = lambda s: FilterNode(
            [s.stmt_id],
            BandNode(
                {s.stmt_id: [AffineExpr.variable(d) for d in s.iter_names]},
                LeafNode(),
            ),
        )
        tree = DomainNode(
            {s.stmt_id: s.domain() for s in kernel.statements},
            SequenceNode([mk(s1), mk(s0)]),
        )
        assert check_legality(tree, deps)

    def test_skewed_stencil_requires_pluto(self):
        """A Jacobi-like self dependence forces a skewed second row."""
        x = Tensor("X", (6, 8), "fp32")
        stmt = PolyStatement(
            stmt_id="S0",
            tensor=x,
            iter_names=["t", "i"],
            iter_extents=[6, 8],
            data_rank=2,
            write=TensorAccess(x, [var("t"), var("i")]),
            reads=[
                TensorAccess(x, [var("t") - 1, var("i") + 1]),
                TensorAccess(x, [var("t") - 1, var("i") - 1]),
            ],
            expr=FloatImm(0.0),
            kind="compute",
        )
        from repro.ir.lower import LoweredKernel

        kernel = LoweredKernel("jacobi", [], [x], [stmt])
        deps = compute_dependences(kernel)
        assert any(d.is_self for d in deps)
        tree = PolyScheduler().schedule_kernel(kernel, deps)
        assert not check_legality(tree, deps)
        band = tree.find_all(BandNode)[0]
        rows = band.schedules["S0"]
        assert len(rows) == 2
        # Second row must involve both t and i (skewing), since identity
        # row `i` is illegal against the (1, -1) dependence.
        second = rows[1]
        assert second.coeff("t") >= 1 and second.coeff("i") >= 1

    def test_skewing_disabled_truncates_band(self):
        x = Tensor("X", (6, 8), "fp32")
        stmt = PolyStatement(
            stmt_id="S0",
            tensor=x,
            iter_names=["t", "i"],
            iter_extents=[6, 8],
            data_rank=2,
            write=TensorAccess(x, [var("t"), var("i")]),
            reads=[TensorAccess(x, [var("t") - 1, var("i") + 1])],
            expr=FloatImm(0.0),
            kind="compute",
        )
        from repro.ir.lower import LoweredKernel

        kernel = LoweredKernel("jacobi", [], [x], [stmt])
        deps = compute_dependences(kernel)
        options = SchedulerOptions(enable_skewing=False)
        tree = PolyScheduler(options).schedule_kernel(kernel, deps)
        band = tree.find_all(BandNode)[0]
        assert len(band.schedules["S0"]) == 1  # only the legal `t` row


class TestLegalityOfCommonOps:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: ops.relu(placeholder((8, 8), name="A")),
            lambda: ops.matmul(
                placeholder((5, 6), name="A"), placeholder((6, 4), name="B")
            ),
            lambda: ops.transpose(placeholder((4, 6), name="A"), (1, 0)),
            lambda: ops.softmax_last_axis(placeholder((3, 5), name="A")),
            lambda: ops.batch_norm_reduce(placeholder((2, 3, 4, 4), name="A"))[0],
        ],
    )
    def test_schedules_are_legal(self, build):
        out = build()
        kernel, deps, tree = schedule(out)
        assert not check_legality(tree, deps)
