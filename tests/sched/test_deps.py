"""Tests for dependence analysis."""

import pytest

from repro.ir import lower, ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.poly.affine import AffineExpr
from repro.sched.deps import (
    _dependence_relations,
    compute_dependences,
    dependence_prune_stats,
    producer_consumer_pairs,
    reset_dependence_prune_stats,
)


def dep_index(deps):
    return {(d.src.stmt_id, d.dst.stmt_id, d.kind) for d in deps}


class TestFlowDeps:
    def test_elementwise_chain(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: b[i] * 2, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        kinds = dep_index(deps)
        assert ("S0", "S1", "flow") in kinds
        # No spurious self dependences for pure elementwise statements.
        assert not any(d.is_self for d in deps)

    def test_pointwise_distance_zero(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: b[i] * 2, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        flow = [d for d in deps if d.kind == "flow"][0]
        assert flow.distance_vector() == [0]

    def test_shifted_distance(self):
        a = placeholder((10,), name="A")
        b = compute((10,), lambda i: a[i] + 1, name="B")
        c = compute((7,), lambda i: b[i + 3] * 2, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        flow = [d for d in deps if d.kind == "flow"][0]
        # C[i] reads B[i+3]: dst index i relates to src index i+3 -> delta -3.
        assert flow.distance_vector() == [-3]

    def test_reduction_dependences(self):
        a = placeholder((4, 6), name="A")
        k = reduce_axis((0, 6), "k")
        c = compute((4,), lambda i: te_sum(a[i, k], axis=k), name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        kinds = dep_index(deps)
        # init -> update: flow (update reads C) and output (both write C).
        assert ("S0", "S1", "flow") in kinds
        assert ("S0", "S1", "output") in kinds
        # update self deps along k: flow, anti and output.
        assert ("S1", "S1", "flow") in kinds
        assert ("S1", "S1", "output") in kinds
        assert ("S1", "S1", "anti") in kinds

    def test_self_dep_direction_is_forward(self):
        a = placeholder((4, 6), name="A")
        k = reduce_axis((0, 6), "k")
        c = compute((4,), lambda i: te_sum(a[i, k], axis=k), name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        self_flow = [d for d in deps if d.is_self and d.kind == "flow"]
        assert self_flow
        for d in self_flow:
            vec = d.distance_vector()
            # data dim distance 0; reduce dim strictly positive.
            assert vec[0] == 0
            assert vec[1] is None or vec[1] >= 1

    def test_no_dep_between_independent_ops(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: a[i] * 2, name="C")
        d = compute((8,), lambda i: b[i] + c[i], name="D")
        kernel = lower(d)
        deps = compute_dependences(kernel)
        kinds = dep_index(deps)
        assert ("S0", "S1", "flow") not in kinds
        assert ("S0", "S2", "flow") in kinds
        assert ("S1", "S2", "flow") in kinds

    def test_producer_consumer_pairs(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: b[i] * 2, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        assert producer_consumer_pairs(deps) == [("S0", "S1")]

    def test_stencil_relation_footprint(self):
        a = placeholder((10,), name="A")
        b = compute((10,), lambda i: a[i] * 2, name="B")
        k = reduce_axis((0, 3), "k")
        c = compute((8,), lambda i: te_sum(b[i + k], axis=k), name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        flows = [
            d
            for d in deps
            if d.kind == "flow" and d.src.stmt_id == "S0" and not d.is_self
        ]
        assert flows
        dep = [d for d in flows if d.dst.kind == "reduce"][0]
        vec = dep.distance_vector()
        assert vec is None or vec[0] is None  # range, not constant

    def test_matmul_dep_count_reasonable(self):
        a = placeholder((4, 5), name="A")
        b = placeholder((5, 3), name="B")
        c = ops.matmul(a, b, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        # init->update flow+output, update self flow/anti/output on k.
        assert len(deps) >= 4
        assert {d.kind for d in deps} >= {"flow", "output"}
        assert all(d.tensor_name in ("A", "B", "C") for d in deps)


class TestIsUniform:
    def test_pointwise_is_uniform(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: b[i] * 2, name="C")
        deps = compute_dependences(lower(c))
        flow = [d for d in deps if d.kind == "flow"][0]
        assert flow.is_uniform
        assert flow.distance_vector() == [0]

    def test_shifted_is_uniform(self):
        a = placeholder((10,), name="A")
        b = compute((10,), lambda i: a[i] + 1, name="B")
        c = compute((7,), lambda i: b[i + 3] * 2, name="C")
        deps = compute_dependences(lower(c))
        flow = [d for d in deps if d.kind == "flow"][0]
        assert flow.is_uniform
        assert flow.distance_vector() == [-3]

    def test_stencil_is_not_uniform_but_vector_is_truthy(self):
        """The bug ``is_uniform`` exists to fix: a stencil dependence's
        distance vector may be a (truthy) list holding ``None`` entries."""
        a = placeholder((10,), name="A")
        b = compute((10,), lambda i: a[i] * 2, name="B")
        k = reduce_axis((0, 3), "k")
        c = compute((8,), lambda i: te_sum(b[i + k], axis=k), name="C")
        deps = compute_dependences(lower(c))
        dep = [
            d
            for d in deps
            if d.kind == "flow" and d.src.stmt_id == "S0" and not d.is_self
            and d.dst.kind == "reduce"
        ][0]
        vec = dep.distance_vector()
        if vec is not None:
            assert bool(vec)  # truthy despite non-constant entries...
            assert any(entry is None for entry in vec)
        assert not dep.is_uniform  # ...so this is the test to use

    def test_rank_mismatch_is_not_uniform(self):
        a = placeholder((4, 6), name="A")
        k = reduce_axis((0, 6), "k")
        c = compute((4,), lambda i: te_sum(a[i, k], axis=k), name="C")
        deps = compute_dependences(lower(c))
        cross_rank = [
            d
            for d in deps
            if not d.is_self
            and len(d.src.iter_names) != len(d.dst.iter_names)
        ]
        assert cross_rank
        for d in cross_rank:
            assert d.distance_vector() is None
            assert not d.is_uniform

    def test_reduction_self_flow_not_uniform(self):
        """Self dependences of a reduction update carry a *range* of
        distances (k' - k >= 1), so ``is_uniform`` must be False even
        though ``distance_vector()`` returns a list."""
        a = placeholder((4, 6), name="A")
        k = reduce_axis((0, 6), "k")
        c = compute((4,), lambda i: te_sum(a[i, k], axis=k), name="C")
        deps = compute_dependences(lower(c))
        self_flow = [d for d in deps if d.is_self and d.kind == "flow"]
        assert self_flow
        for d in self_flow:
            assert not d.is_uniform
            vec = d.distance_vector()
            assert vec is not None and any(e is None for e in vec)


class TestSelfDependences:
    def test_self_deps_have_all_three_kinds(self):
        a = placeholder((4, 6), name="A")
        k = reduce_axis((0, 6), "k")
        c = compute((4,), lambda i: te_sum(a[i, k], axis=k), name="C")
        deps = compute_dependences(lower(c))
        self_kinds = {d.kind for d in deps if d.is_self}
        assert self_kinds == {"flow", "anti", "output"}

    def test_self_dep_relations_are_lex_forward(self):
        """Every self-dependence relation is a union member fixing an
        equal prefix and advancing one level: constant entries before the
        first varying dim are 0, and some relation fixes a full prefix."""
        a = placeholder((4, 5), name="A")
        b = placeholder((5, 3), name="B")
        deps = compute_dependences(lower(ops.matmul(a, b, name="C")))
        self_vecs = [
            d.distance_vector()
            for d in deps
            if d.is_self and d.distance_vector() is not None
        ]
        assert self_vecs
        for vec in self_vecs:
            for entry in vec:
                if entry is None:
                    break  # the advancing level: a range, not a constant
                assert entry == 0  # equal-prefix dims
        # Deeper levels exist: some relation pins the two data dims.
        assert any(vec[:2] == [0, 0] for vec in self_vecs)

    def test_elementwise_has_no_self_deps(self):
        a = placeholder((8, 8), name="A")
        deps = compute_dependences(lower(ops.relu(a, name="R")))
        assert not any(d.is_self for d in deps)


class TestBoundingBoxPruning:
    def _chain(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: b[i] * 2, name="C")
        return lower(c)

    def test_disjoint_footprints_pruned_and_exactly_empty(self):
        """A consumer reading a region the producer never writes: the
        interval hulls are disjoint, the pruned path rejects the pair
        without ILP, and the exact path agrees it is empty."""
        from repro.ir.lower import TensorAccess

        kernel = self._chain()
        src, dst = kernel.statements
        # src writes B[i] with i in [0, 7]; fabricate a read of B[j + 100]
        # (hull [100, 107]) from dst's domain.
        shifted = TensorAccess(
            src.tensor,
            [AffineExpr.variable(dst.iter_names[0]) + 100],
        )
        reset_dependence_prune_stats()
        pruned_rels, _ = _dependence_relations(
            src, dst, src.write, shifted, prune=True
        )
        stats = dependence_prune_stats()
        assert pruned_rels == []
        assert stats["pairs_checked"] == 1
        assert stats["pairs_pruned"] == 1
        exact_rels, _ = _dependence_relations(
            src, dst, src.write, shifted, prune=False
        )
        assert exact_rels == []

    def test_overlapping_footprints_not_pruned(self):
        kernel = self._chain()
        src, dst = kernel.statements
        read = dst.reads[0]
        reset_dependence_prune_stats()
        rels, _ = _dependence_relations(src, dst, src.write, read, prune=True)
        stats = dependence_prune_stats()
        assert len(rels) == 1
        assert stats["pairs_checked"] == 1
        assert stats["pairs_pruned"] == 0

    def test_prune_counters_only_tick_when_enabled(self):
        kernel = self._chain()
        reset_dependence_prune_stats()
        compute_dependences(kernel, prune=False)
        assert dependence_prune_stats()["pairs_checked"] == 0
        compute_dependences(kernel, prune=True)
        assert dependence_prune_stats()["pairs_checked"] > 0

    @staticmethod
    def _example_kernels():
        def chain():
            a = placeholder((12, 9), name="A")
            return ops.relu(ops.scalar_add(a, 1.0, name="B"), name="C")

        def matmul():
            a = placeholder((6, 7), name="A")
            b = placeholder((7, 5), name="B")
            return ops.matmul(a, b, name="MM")

        def conv2d():
            d = placeholder((1, 2, 7, 7), name="D")
            w = placeholder((2, 2, 3, 3), name="W")
            return ops.conv2d(d, w, stride=(1, 1), padding=(1, 1), name="CV")

        def stencil():
            a = placeholder((14, 14), name="A")
            a1 = ops.scalar_add(a, 1.0, name="A1")
            b = placeholder((3, 3), name="B")
            kh = reduce_axis((0, 3), "kh")
            kw = reduce_axis((0, 3), "kw")
            return compute(
                (12, 12),
                lambda h, w: te_sum(
                    a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)
                ),
                name="C",
            )

        def softmax():
            x = placeholder((5, 11), name="X")
            return ops.softmax_last_axis(x, name="SM")

        def reduction():
            x = placeholder((6, 20), name="X")
            k = reduce_axis((0, 20), "k")
            return compute((6,), lambda i: te_sum(x[i, k], axis=k), name="S")

        return {
            "chain": chain,
            "matmul": matmul,
            "conv2d": conv2d,
            "stencil": stencil,
            "softmax": softmax,
            "reduction": reduction,
        }

    @pytest.mark.parametrize("name", sorted(_example_kernels.__func__()))
    def test_pruned_equals_unpruned_on_example_kernels(self, name):
        """The acceptance regression: pruning never changes the computed
        dependence set — same edges, same kinds, same exact relations."""
        kernel = lower(self._example_kernels()[name]())
        pruned = compute_dependences(kernel, prune=True)
        exact = compute_dependences(kernel, prune=False)

        def canon(deps):
            return [
                (
                    d.src.stmt_id,
                    d.dst.stmt_id,
                    d.kind,
                    d.tensor_name,
                    tuple(d.relation.constraints),
                )
                for d in deps
            ]

        assert canon(pruned) == canon(exact)
