"""Tests for dependence analysis."""

import pytest

from repro.ir import lower, ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.sched.deps import compute_dependences, producer_consumer_pairs


def dep_index(deps):
    return {(d.src.stmt_id, d.dst.stmt_id, d.kind) for d in deps}


class TestFlowDeps:
    def test_elementwise_chain(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: b[i] * 2, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        kinds = dep_index(deps)
        assert ("S0", "S1", "flow") in kinds
        # No spurious self dependences for pure elementwise statements.
        assert not any(d.is_self for d in deps)

    def test_pointwise_distance_zero(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: b[i] * 2, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        flow = [d for d in deps if d.kind == "flow"][0]
        assert flow.distance_vector() == [0]

    def test_shifted_distance(self):
        a = placeholder((10,), name="A")
        b = compute((10,), lambda i: a[i] + 1, name="B")
        c = compute((7,), lambda i: b[i + 3] * 2, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        flow = [d for d in deps if d.kind == "flow"][0]
        # C[i] reads B[i+3]: dst index i relates to src index i+3 -> delta -3.
        assert flow.distance_vector() == [-3]

    def test_reduction_dependences(self):
        a = placeholder((4, 6), name="A")
        k = reduce_axis((0, 6), "k")
        c = compute((4,), lambda i: te_sum(a[i, k], axis=k), name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        kinds = dep_index(deps)
        # init -> update: flow (update reads C) and output (both write C).
        assert ("S0", "S1", "flow") in kinds
        assert ("S0", "S1", "output") in kinds
        # update self deps along k: flow, anti and output.
        assert ("S1", "S1", "flow") in kinds
        assert ("S1", "S1", "output") in kinds
        assert ("S1", "S1", "anti") in kinds

    def test_self_dep_direction_is_forward(self):
        a = placeholder((4, 6), name="A")
        k = reduce_axis((0, 6), "k")
        c = compute((4,), lambda i: te_sum(a[i, k], axis=k), name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        self_flow = [d for d in deps if d.is_self and d.kind == "flow"]
        assert self_flow
        for d in self_flow:
            vec = d.distance_vector()
            # data dim distance 0; reduce dim strictly positive.
            assert vec[0] == 0
            assert vec[1] is None or vec[1] >= 1

    def test_no_dep_between_independent_ops(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: a[i] * 2, name="C")
        d = compute((8,), lambda i: b[i] + c[i], name="D")
        kernel = lower(d)
        deps = compute_dependences(kernel)
        kinds = dep_index(deps)
        assert ("S0", "S1", "flow") not in kinds
        assert ("S0", "S2", "flow") in kinds
        assert ("S1", "S2", "flow") in kinds

    def test_producer_consumer_pairs(self):
        a = placeholder((8,), name="A")
        b = compute((8,), lambda i: a[i] + 1, name="B")
        c = compute((8,), lambda i: b[i] * 2, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        assert producer_consumer_pairs(deps) == [("S0", "S1")]

    def test_stencil_relation_footprint(self):
        a = placeholder((10,), name="A")
        b = compute((10,), lambda i: a[i] * 2, name="B")
        k = reduce_axis((0, 3), "k")
        c = compute((8,), lambda i: te_sum(b[i + k], axis=k), name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        flows = [
            d
            for d in deps
            if d.kind == "flow" and d.src.stmt_id == "S0" and not d.is_self
        ]
        assert flows
        dep = [d for d in flows if d.dst.kind == "reduce"][0]
        vec = dep.distance_vector()
        assert vec is None or vec[0] is None  # range, not constant

    def test_matmul_dep_count_reasonable(self):
        a = placeholder((4, 5), name="A")
        b = placeholder((5, 3), name="B")
        c = ops.matmul(a, b, name="C")
        kernel = lower(c)
        deps = compute_dependences(kernel)
        # init->update flow+output, update self flow/anti/output on k.
        assert len(deps) >= 4
        assert {d.kind for d in deps} >= {"flow", "output"}
        assert all(d.tensor_name in ("A", "B", "C") for d in deps)
