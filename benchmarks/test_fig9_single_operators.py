"""Fig. 9: performance of single operators, four versions.

The paper runs ten operator classes (conv, matmul, relu, batched matmul,
cast, transpose, one-hot, tensor add, BatchNorm training reduction and
update) over 10 shape configurations each at batch 16, and reports the
geometric-mean speedup of each version normalised to AKG.

Paper findings this bench reproduces in *shape*:

- naive CCE ~2.8x slower than optimized CCE,
- AKG within ~4% of the optimized CCE / vendor libraries,
- AKG ~1.6x faster than the TVM baseline on average.

The default grid uses 3 shapes per operator; set ``REPRO_FULL=1`` for all
10.  Output: a speedup table normalised to AKG (higher is better),
matching the figure's y-axis.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from benchmarks.common import (
    BACKENDS,
    FULL,
    cached_cycles,
    geomean,
    run_once,
    speedup_table,
)
from repro.ir import ops
from repro.ir.tensor import placeholder

BATCH = 16


def _shapes(full_list):
    return full_list if FULL else full_list[:3]


def op1_conv(c, hw_, k):
    d = placeholder((BATCH, c, hw_, hw_), dtype="fp16", name="D")
    w = placeholder((c, c, k, k), dtype="fp16", name="W")
    return ops.conv2d(d, w, padding=(k // 2, k // 2), name="conv")


def op2_matmul(m, k, n):
    a = placeholder((m, k), dtype="fp16", name="A")
    b = placeholder((k, n), dtype="fp16", name="B")
    return ops.matmul(a, b, name="matmul")


def op3_relu(c, hw_):
    x = placeholder((BATCH, c, hw_, hw_), dtype="fp16", name="X")
    return ops.relu(x, name="relu")


def op4_batched_matmul(b, m, k, n):
    x = placeholder((b, m, k), dtype="fp16", name="A")
    y = placeholder((b, k, n), dtype="fp16", name="B")
    return ops.batched_matmul(x, y, name="bmm")


def op5_cast(c, hw_):
    x = placeholder((BATCH, c, hw_, hw_), dtype="fp32", name="X")
    return ops.cast(x, "fp16", name="cast")


def op6_transpose(m, n):
    x = placeholder((m, n), dtype="fp16", name="X")
    return ops.transpose(x, (1, 0), name="transpose")


def op7_one_hot(n, depth):
    idx = placeholder((n,), dtype="int32", name="IDX")
    return ops.one_hot(idx, depth, name="one_hot")


def op8_add(c, hw_):
    x = placeholder((BATCH, c, hw_, hw_), dtype="fp16", name="X")
    y = placeholder((BATCH, c, hw_, hw_), dtype="fp16", name="Y")
    return ops.add(x, y, name="add")


def op9_bn_reduce(c, hw_):
    x = placeholder((BATCH, c, hw_, hw_), dtype="fp16", name="X")
    total, sq = ops.batch_norm_reduce(x, name="bn")
    return [total, sq]


def op10_bn_update(c, hw_):
    x = placeholder((BATCH, c, hw_, hw_), dtype="fp16", name="X")
    params = [
        placeholder((c,), dtype="fp16", name=nm) for nm in ("M", "V", "G", "B2")
    ]
    return ops.batch_norm_update(x, *params, name="bn_update")


OPERATORS: List[Tuple[str, object, List[Tuple]]] = [
    ("op1_conv", op1_conv, [
        (32, 28, 3), (64, 28, 3), (64, 14, 1), (32, 56, 3), (128, 14, 3),
        (64, 28, 1), (96, 14, 3), (32, 28, 5), (48, 28, 3), (64, 7, 3),
    ]),
    ("op2_matmul", op2_matmul, [
        (256, 256, 256), (512, 512, 512), (512, 256, 1024), (1024, 1024, 1024),
        (768, 768, 768), (256, 1024, 256), (384, 384, 384), (640, 640, 640),
        (1024, 512, 512), (896, 896, 896),
    ]),
    ("op3_relu", op3_relu, [
        (64, 32), (128, 28), (64, 56), (256, 14), (32, 64),
        (96, 28), (48, 56), (256, 7), (128, 14), (16, 112),
    ]),
    ("op4_bmm", op4_batched_matmul, [
        (BATCH, 128, 64, 128), (BATCH, 256, 64, 256), (BATCH, 128, 128, 128),
        (BATCH, 64, 64, 64), (BATCH, 256, 128, 256), (BATCH, 128, 256, 128),
        (BATCH, 192, 64, 192), (BATCH, 320, 64, 320), (BATCH, 96, 96, 96),
        (BATCH, 160, 160, 160),
    ]),
    ("op5_cast", op5_cast, [
        (64, 32), (128, 28), (64, 56), (256, 14), (32, 64),
        (96, 28), (48, 56), (256, 7), (128, 14), (16, 112),
    ]),
    ("op6_transpose", op6_transpose, [
        (512, 512), (1024, 512), (768, 1024), (2048, 512), (1024, 1024),
        (512, 2048), (640, 768), (896, 512), (1536, 512), (512, 1536),
    ]),
    ("op7_one_hot", op7_one_hot, [
        (1024, 1000), (2048, 1000), (4096, 512), (1024, 4096), (512, 21128),
        (2048, 512), (1024, 2048), (8192, 128), (4096, 1024), (512, 30522),
    ]),
    ("op8_add", op8_add, [
        (64, 32), (128, 28), (64, 56), (256, 14), (32, 64),
        (96, 28), (48, 56), (256, 7), (128, 14), (16, 112),
    ]),
    ("op9_bn_reduce", op9_bn_reduce, [
        (64, 28), (128, 14), (32, 56), (64, 14), (256, 7),
        (96, 28), (48, 28), (128, 28), (64, 56), (32, 28),
    ]),
    ("op10_bn_update", op10_bn_update, [
        (64, 28), (128, 14), (32, 56), (64, 14), (256, 7),
        (96, 28), (48, 28), (128, 28), (64, 56), (32, 28),
    ]),
]

PATHS = ["cce_naive", "cce_opt", "tvm", "akg"]


def _measure_operator(op_name, builder, shapes) -> Dict[str, float]:
    """Geomean speedup vs AKG per path for one operator class."""
    per_path: Dict[str, List[float]] = {p: [] for p in PATHS}
    for shape in shapes:
        cycles = {
            p: cached_cycles(p, (op_name,) + tuple(shape), lambda: builder(*shape))
            for p in PATHS
        }
        for p in PATHS:
            per_path[p].append(cycles["akg"] / cycles[p])
    return {p: geomean(v) for p, v in per_path.items()}


@pytest.mark.parametrize("op_name,builder,shapes", OPERATORS, ids=[o[0] for o in OPERATORS])
def test_fig9_operator(benchmark, op_name, builder, shapes):
    """One Fig. 9 bar group: speedups of all four versions, AKG = 1.0."""
    result = run_once(
        benchmark, lambda: _measure_operator(op_name, builder, _shapes(shapes))
    )
    if benchmark is not None:
        benchmark.extra_info.update({f"speedup_{p}": v for p, v in result.items()})
    print(f"\n[Fig9] {op_name}: " + "  ".join(f"{p}={v:.3f}" for p, v in result.items()))
    # Shape assertions from the paper.
    assert result["akg"] == pytest.approx(1.0)
    assert result["cce_naive"] < result["cce_opt"], "naive must trail expert"


def test_fig9_summary(benchmark):
    """Aggregate means across all operators (the paper's headline numbers:
    AKG within ~4% of expert CCE; ~1.6x over TVM; naive ~2.8x below expert)."""

    def compute():
        all_results = {
            op_name: _measure_operator(op_name, builder, _shapes(shapes))
            for op_name, builder, shapes in OPERATORS
        }
        summary = {
            p: geomean([r[p] for r in all_results.values()]) for p in PATHS
        }
        return all_results, summary

    all_results, summary = run_once(benchmark, compute)
    rows = [(k, {p: int(1e6 / max(v[p], 1e-9)) for p in PATHS}) for k, v in all_results.items()]
    print("\n[Fig9] speedup vs AKG (higher is better, AKG = 1.0)")
    for op_name, r in all_results.items():
        print(f"  {op_name:<16}" + "".join(f"{r[p]:>12.3f}" for p in PATHS))
    print("  " + "-" * 64)
    print(f"  {'geomean':<16}" + "".join(f"{summary[p]:>12.3f}" for p in PATHS))
    if benchmark is not None:
        benchmark.extra_info.update({f"geomean_{p}": summary[p] for p in PATHS})

    # The paper's qualitative ordering.
    assert summary["cce_naive"] < summary["cce_opt"]
    assert summary["tvm"] < 1.0, "AKG beats TVM on average"
    assert summary["cce_opt"] == pytest.approx(1.0, abs=0.35), (
        "AKG within reach of the vendor libraries"
    )
