"""Ablations of AKG's design choices (per DESIGN.md).

Not a paper figure: these isolate the contribution of each mechanism the
paper argues for, on workloads where it should matter.

1. post-tiling fusion on/off           (Sec. 4.3 -- extension nodes)
2. DP vs empirical vs naive sync       (Sec. 5.2)
3. double buffering on/off             (Sec. 5.2 -- latency hiding)
4. fractal alignment: aligned vs ragged GEMM shapes (Sec. 4.5)
5. Auto Tiling vs the ML-guided auto-tuner (Sec. 5.3)
"""

from __future__ import annotations

import pytest

from benchmarks.common import run_once
from repro.core.compiler import AkgOptions, build
from repro.ir import ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum


def stencil_chain():
    """The paper's running-example pattern at a DMA-relevant size."""
    a = placeholder((512, 512), dtype="fp16", name="A")
    a1 = ops.scalar_add(a, 1.0, name="pre")
    kh = reduce_axis((0, 3), "kh")
    kw = reduce_axis((0, 3), "kw")
    b = placeholder((3, 3), dtype="fp16", name="B")
    c = compute(
        (510, 510),
        lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
        name="conv",
    )
    return ops.relu(c, name="out")


def test_ablation_post_tiling_fusion(benchmark):
    """Extension-node fusion removes the producer's GM round trip."""

    def compute_():
        fused = build(stencil_chain(), "f").cycles()
        unfused = build(
            stencil_chain(), "u", options=AkgOptions(post_tiling_fusion=False)
        ).cycles()
        return fused, unfused

    fused, unfused = run_once(benchmark, compute_)
    print(f"\n[Ablation] post-tiling fusion: on={fused}, off={unfused}, "
          f"benefit={unfused / fused:.2f}x")
    if benchmark is not None:
        benchmark.extra_info["benefit"] = unfused / fused
    assert fused < unfused


def test_ablation_sync_policy(benchmark):
    """dp <= empirical <= naive on a pipeline-balanced kernel."""
    a = placeholder((512, 512), dtype="fp16", name="A")
    b = placeholder((512, 512), dtype="fp16", name="B")
    mm = ops.matmul(a, b, name="MM")

    def compute_():
        return {
            policy: build(mm, policy, options=AkgOptions(sync_policy=policy)).cycles()
            for policy in ("dp", "empirical", "naive")
        }

    cycles = run_once(benchmark, compute_)
    print(f"\n[Ablation] sync policy: {cycles}")
    if benchmark is not None:
        benchmark.extra_info.update(cycles)
    assert cycles["dp"] <= cycles["empirical"] <= cycles["naive"]


def test_ablation_double_buffering(benchmark):
    """Latency hiding overlaps DMA with compute across tiles."""
    x = placeholder((1024, 1024), dtype="fp16", name="X")
    t = ops.sigmoid(ops.scalar_mul(x, 2.0, name="S"), name="OUT")

    def compute_():
        on = build(t, "db", options=AkgOptions(double_buffer=True)).cycles()
        off = build(t, "nodb", options=AkgOptions(double_buffer=False)).cycles()
        return on, off

    on, off = run_once(benchmark, compute_)
    print(f"\n[Ablation] double buffering: on={on}, off={off}, "
          f"benefit={off / on:.2f}x")
    if benchmark is not None:
        benchmark.extra_info["benefit"] = off / on
    assert on < off


def test_ablation_fractal_alignment(benchmark):
    """Ragged GEMM extents pay fractal padding (Sec. 4.5, Fig. 7)."""

    def gemm(n):
        a = placeholder((n, n), dtype="fp16", name="A")
        b = placeholder((n, n), dtype="fp16", name="B")
        return ops.matmul(a, b, name=f"mm{n}")

    def compute_():
        aligned = build(gemm(512), "al").cycles()
        ragged = build(gemm(520), "rg").cycles()  # 520 = 512 + 8: pads to 528
        return aligned, ragged

    aligned, ragged = run_once(benchmark, compute_)
    useful_ratio = (520 / 512) ** 3
    print(f"\n[Ablation] fractal alignment: 512^3={aligned}, 520^3={ragged}, "
          f"ratio={ragged / aligned:.3f} (work ratio {useful_ratio:.3f})")
    if benchmark is not None:
        benchmark.extra_info["ratio"] = ragged / aligned
    # The ragged shape costs more than its useful-work ratio alone.
    assert ragged / aligned > useful_ratio * 0.95


def test_ablation_auto_tuner_vs_auto_tiling(benchmark):
    """Sec. 5.3: the tuner usually matches or beats analytic Auto Tiling."""
    from repro.autotune import tune_tile_sizes

    x = placeholder((512, 384), dtype="fp16", name="X")
    t = ops.tanh_op(x, name="OUT")

    def compute_():
        auto = build(t, "auto").cycles()
        _, history = tune_tile_sizes(
            t, "tuned", first_round=8, round_size=4, max_rounds=2
        )
        tuned = min(r.cycles for r in history)
        return auto, tuned

    auto, tuned = run_once(benchmark, compute_)
    print(f"\n[Ablation] auto-tiling={auto} vs tuner best={tuned}")
    if benchmark is not None:
        benchmark.extra_info.update({"auto": auto, "tuned": tuned})
    assert tuned <= auto * 1.01
