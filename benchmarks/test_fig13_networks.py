"""Fig. 13: performance of end-to-end networks.

Five workloads -- ResNet-50, MobileNet-v2, AlexNet, BERT (vocab 21,128
and 30,522) and SSD -- compiled subgraph by subgraph through the graph
engine and summed (weighted by layer multiplicity).  As in the paper,
the optimized-CCE version exists only for ResNet-50.

Paper findings reproduced in shape:

- AKG and TVM perform similarly on the conv-dominated CNNs;
- AKG wins on BERT (both vocabularies) and SSD, which are dominated by
  fused vector subgraphs;
- overall AKG improves on TVM by ~20%;
- on ResNet-50 both compilers beat the hand-written CCE by several
  percent.

The default run uses the two cheapest networks plus BERT; set
``REPRO_FULL=1`` for all six workloads.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import pytest

from benchmarks.common import FULL, geomean, run_once
from repro.graph import alexnet, bert, mobilenet_v2, resnet50, ssd300

_spec_cycle_cache: Dict[Tuple, int] = {}


def _backend(path: str) -> Callable:
    from repro.cce import cce_expert_build
    from repro.core.compiler import build
    from repro.tvmbaseline.compiler import tvm_build

    fns = {
        "akg": lambda outs, nm: build(outs, nm).cycles(),
        "tvm": lambda outs, nm: tvm_build(outs, nm).cycles(),
        "cce_opt": lambda outs, nm: cce_expert_build(outs, nm).cycles(),
    }
    fn = fns[path]

    def run(spec):
        key = (path, spec.signature)
        if key not in _spec_cycle_cache:
            _spec_cycle_cache[key] = fn(spec.outputs, spec.name)
        return _spec_cycle_cache[key]

    return run


NETWORKS = {
    "alexnet": alexnet,
    "bert21128": lambda: bert(21128),
    "bert30522": lambda: bert(30522),
    "resnet50": resnet50,
    "mobilenetv2": mobilenet_v2,
    "ssd300": ssd300,
}
DEFAULT = ["alexnet", "bert21128", "bert30522", "resnet50"]
SELECTED = list(NETWORKS) if FULL else DEFAULT


@pytest.mark.parametrize("net_name", SELECTED)
def test_fig13_network(benchmark, net_name):
    """AKG-normalised speedups for one end-to-end workload."""

    def compute():
        net = NETWORKS[net_name]()
        cycles = {
            "akg": net.total_cycles(_backend("akg")),
            "tvm": net.total_cycles(_backend("tvm")),
        }
        if net_name == "resnet50":
            cycles["cce_opt"] = net.total_cycles(_backend("cce_opt"))
        return cycles

    cycles = run_once(benchmark, compute)
    speedups = {p: cycles["akg"] / c for p, c in cycles.items()}
    print(
        f"\n[Fig13] {net_name}: "
        + "  ".join(f"{p}={v:.3f}" for p, v in speedups.items())
        + f"   (AKG cycles: {cycles['akg']})"
    )
    if benchmark is not None:
        benchmark.extra_info.update({f"speedup_{p}": v for p, v in speedups.items()})
        benchmark.extra_info["akg_cycles"] = cycles["akg"]

    assert speedups["tvm"] <= 1.08, "AKG at least matches TVM end to end"
    if net_name.startswith("bert"):
        assert speedups["tvm"] < 1.0, "AKG wins on BERT"
    if net_name == "resnet50":
        # Paper: compilers ~7.6% over the hand-written CCE.  The expert's
        # hardware prefetch compensates more in this simulator (per-tile
        # DMA start-up dominates conv nets), so the assertion tolerates
        # parity; EXPERIMENTS.md records the measured number.
        assert speedups["cce_opt"] < 1.12, "expert must not win big on ResNet"


def test_fig13_summary(benchmark):
    """Overall AKG-over-TVM improvement across the selected workloads."""

    def compute():
        rows = {}
        for net_name in SELECTED:
            net = NETWORKS[net_name]()
            akg = net.total_cycles(_backend("akg"))
            tvm = net.total_cycles(_backend("tvm"))
            rows[net_name] = (akg, tvm)
        return rows

    rows = run_once(benchmark, compute)
    ratios = [tvm / akg for akg, tvm in rows.values()]
    overall = geomean(ratios)
    print("\n[Fig13] end-to-end cycles")
    print(f"  {'network':<14}{'AKG':>14}{'TVM':>14}{'TVM/AKG':>10}")
    for name, (akg, tvm) in rows.items():
        print(f"  {name:<14}{akg:>14}{tvm:>14}{tvm / akg:>10.3f}")
    print(f"  overall AKG improvement over TVM: {100 * (overall - 1):.1f}%")
    if benchmark is not None:
        benchmark.extra_info["overall_improvement_pct"] = 100 * (overall - 1)

    assert overall > 1.0, "AKG improves on TVM overall"
