"""Fig. 12: performance of the five fused subgraphs.

Three versions per subgraph -- hand-optimized CCE (per-operator kernels,
no cross-op fusion), the TVM baseline, and AKG -- normalised to AKG.

Paper findings reproduced in shape:

- AKG is the best version on every subgraph;
- AKG beats TVM by ~1.3x mean, with the big wins on subgraph1 and
  subgraph5 (the chains containing a stencil producer, which need AKG's
  complex tile shapes / post-tiling fusion);
- AKG beats the per-operator expert code by a large factor (~5.6x in the
  paper) because fused chains keep intermediates on chip.
"""

from __future__ import annotations

from typing import Dict

import pytest

from benchmarks.common import cached_cycles, geomean, run_once
from repro.graph.subgraphs import paper_subgraphs

PATHS = ["cce_opt", "tvm", "akg"]


def _measure(row) -> Dict[str, int]:
    return {
        p: cached_cycles(p, ("fig12", row.index), row.build) for p in PATHS
    }


@pytest.mark.parametrize("index", [1, 2, 3, 4, 5])
def test_fig12_subgraph(benchmark, index):
    row = paper_subgraphs()[index - 1]
    cycles = run_once(benchmark, lambda: _measure(row))
    speedups = {p: cycles["akg"] / cycles[p] for p in PATHS}
    print(
        f"\n[Fig12] {row.name} ({row.n_ops} ops, {row.precision}): "
        + "  ".join(f"{p}={speedups[p]:.3f}" for p in PATHS)
    )
    if benchmark is not None:
        benchmark.extra_info.update({f"speedup_{p}": v for p, v in speedups.items()})
    # AKG is the best version on every subgraph.
    assert all(speedups[p] <= 1.0 + 1e-9 for p in PATHS)


def test_fig12_summary(benchmark):
    def compute():
        results = {}
        for row in paper_subgraphs():
            cycles = _measure(row)
            results[row.name] = {p: cycles["akg"] / cycles[p] for p in PATHS}
        return results

    results = run_once(benchmark, compute)
    means = {p: geomean([r[p] for r in results.values()]) for p in PATHS}
    print("\n[Fig12] speedup vs AKG (higher is better, AKG = 1.0)")
    for name, r in results.items():
        print(f"  {name:<12}" + "".join(f"{r[p]:>12.3f}" for p in PATHS))
    print("  " + "-" * 48)
    print(f"  {'geomean':<12}" + "".join(f"{means[p]:>12.3f}" for p in PATHS))
    if benchmark is not None:
        benchmark.extra_info.update({f"geomean_{p}": v for p, v in means.items()})

    # The paper's ordering: AKG > TVM > expert CCE, by large margins on
    # the expert side (paper: 5.6x mean; the simulator's per-tile DMA
    # latency floor narrows the gap -- see EXPERIMENTS.md -- so the
    # assertion checks the ordering and a conservative factor).
    assert means["tvm"] < 1.0
    assert means["cce_opt"] < means["tvm"]
    assert 1.0 / means["cce_opt"] > 1.8, "expert trails AKG by a large factor"
    # The stencil subgraphs are where AKG pulls ahead of TVM.
    assert results["subgraph1"]["tvm"] < 0.9
    assert results["subgraph5"]["tvm"] < 0.9
