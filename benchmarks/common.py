"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark compiles kernels through up to four paths -- AKG, the
TVM-style baseline, expert CCE and naive CCE -- and reports *simulated
execution cycles*, the unit the paper's figures use.  Results are cached
per (path, kernel-signature) because networks repeat shapes heavily.

Set ``REPRO_FULL=1`` to run the complete configuration grids of the paper
(10 shapes per operator, all 41 GEMM shapes, all five networks); the
default grids are representative subsets that finish in minutes.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

FULL = os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")

_cycle_cache: Dict[Tuple, int] = {}


def akg_cycles(outputs, name: str = "k") -> int:
    """Simulated cycles of the AKG compilation path."""
    from repro.core.compiler import build

    return build(outputs, name).cycles()


def tvm_cycles(outputs, name: str = "k") -> int:
    """Simulated cycles of the TVM-baseline path."""
    from repro.tvmbaseline.compiler import tvm_build

    return tvm_build(outputs, name).cycles()


def expert_cycles(outputs, name: str = "k") -> int:
    """Simulated cycles of the expert (optimized CCE / vendor) path."""
    from repro.cce import cce_expert_build

    return cce_expert_build(outputs, name).cycles()


def naive_cycles(outputs, name: str = "k") -> int:
    """Simulated cycles of the naive CCE path."""
    from repro.cce import cce_naive_build

    return cce_naive_build(outputs, name).cycles()


BACKENDS: Dict[str, Callable] = {
    "cce_naive": naive_cycles,
    "cce_opt": expert_cycles,
    "tvm": tvm_cycles,
    "akg": akg_cycles,
}


def cached_cycles(path: str, signature: Tuple, builder: Callable[[], object]) -> int:
    """Compile+simulate once per (path, signature)."""
    key = (path, signature)
    if key not in _cycle_cache:
        _cycle_cache[key] = BACKENDS[path](builder(), f"{path}_kernel")
    return _cycle_cache[key]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregation for speedups)."""
    arr = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.log(arr).mean()))


def speedup_table(
    rows: List[Tuple[str, Dict[str, int]]], baseline: str = "akg"
) -> str:
    """Render normalised speedups (baseline cycles / path cycles)."""
    paths = sorted({p for _, cycles in rows for p in cycles})
    header = f"{'case':<22}" + "".join(f"{p:>12}" for p in paths)
    lines = [header, "-" * len(header)]
    for case, cycles in rows:
        base = cycles[baseline]
        line = f"{case:<22}"
        for p in paths:
            line += f"{base / cycles[p]:>12.3f}"
        lines.append(line)
    return "\n".join(lines)


def run_once(benchmark, fn):
    """Attach a single-shot measurement to pytest-benchmark.

    The interesting output is the simulated cycle data (stored in
    ``benchmark.extra_info``), not the harness wall time, so one round is
    enough.
    """
    if benchmark is None:
        return fn()
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
