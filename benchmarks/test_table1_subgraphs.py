"""Table 1: summary of the five fused subgraphs.

Prints the table verbatim from the subgraph definitions and verifies
that each builder actually produces the advertised operator counts,
precision and shapes -- the same bookkeeping the paper's table records.
"""

from __future__ import annotations

import pytest

from benchmarks.common import run_once
from repro.graph.subgraphs import paper_subgraphs


def test_table1_summary(benchmark):
    rows = run_once(benchmark, paper_subgraphs)
    print("\n[Table 1] summary of the subgraphs")
    print(
        f"  {'no.':<5}{'# of ops':<10}{'precision':<11}{'batch':<7}"
        f"{'input shape':<20}{'output shape':<20}"
    )
    for row in rows:
        print(
            f"  {row.index:<5}{row.n_ops:<10}{row.precision:<11}{row.batch:<7}"
            f"{str(row.input_shape):<20}{str(row.output_shape):<20}"
        )

    assert [r.n_ops for r in rows] == [6, 21, 15, 11, 9]
    assert [r.precision for r in rows] == ["FP16", "FP16", "FP32", "FP32", "FP16"]
    assert rows[0].input_shape == (16, 16, 512, 512)
    assert rows[1].input_shape == (256, 512, 16, 16)
    assert rows[2].input_shape == (30522, 1024)
    assert rows[3].input_shape == (1024, 1024)
    assert rows[4].input_shape == (64, 1, 16, 16)

    for row in rows:
        outs = row.build()
        computed = {
            id(t)
            for o in outs
            for t in o.ancestors()
            if not t.is_placeholder
        }
        assert len(computed) == row.n_ops, row.name
