"""Fig. 10: lines-of-code comparison for three important operators.

The paper compares the development cost of three operator implementations:
the hand-written optimized CCE kernel, the TVM schedule template, and the
AKG DSL expression.  We measure the equivalent artefacts of this
repository:

- **CCE opt**: the CCE kernel text a vendor engineer must write by hand.
  A library kernel must cover *many shape configurations* (the paper
  stresses manual code "fails to scale with different shape
  configurations"), so we emit the specialised kernel for several
  representative shapes and sum them -- the union of cases a hand-written
  generic kernel embeds as branches.
- **TVM**: what a template author writes: the compute DSL plus the
  schedule template.
- **AKG**: only the compute DSL (scheduling is fully automatic).

Expected shape: CCE >> TVM > AKG.
"""

from __future__ import annotations

import inspect
from typing import Dict

import pytest

from benchmarks.common import run_once
from repro.ir import ops
from repro.ir.tensor import placeholder
from repro.tvmbaseline import templates

# What a user literally writes in the te DSL (cf. Fig. 3a of the paper).
DSL_SNIPPETS = {
    "conv2d": '''
D = placeholder((16, 64, 28, 28), "fp16", "D")
W = placeholder((64, 64, 3, 3), "fp16", "W")
rc = reduce_axis((0, 64), "rc")
rkh = reduce_axis((0, 3), "rkh")
rkw = reduce_axis((0, 3), "rkw")
C = compute((16, 64, 28, 28), lambda n, o, h, w: te_sum(
    D[n, rc, h + rkh - 1, w + rkw - 1] * W[o, rc, rkh, rkw],
    axis=(rc, rkh, rkw)), name="conv")
''',
    "matmul": '''
A = placeholder((512, 512), "fp16", "A")
B = placeholder((512, 512), "fp16", "B")
k = reduce_axis((0, 512), "k")
C = compute((512, 512), lambda i, j: te_sum(A[i, k] * B[k, j], axis=k),
            name="matmul")
''',
    "relu": '''
X = placeholder((16, 64, 28, 28), "fp16", "X")
R = compute(X.shape, lambda *i: relu(X[i]), name="relu")
''',
}

# Shape configurations a hand-written library kernel must cover.
_CCE_SHAPE_CASES = {
    "conv2d": [(32, 28, 3), (64, 28, 3), (64, 14, 1), (32, 56, 5)],
    "matmul": [(256, 256), (512, 512), (1024, 512), (768, 1024)],
    "relu": [(64, 28), (128, 14), (32, 56), (96, 7)],
}


def _snippet_loc(name: str) -> int:
    return sum(1 for ln in DSL_SNIPPETS[name].splitlines() if ln.strip())


def _template_loc(fn) -> int:
    lines = inspect.getsource(fn).splitlines()
    return sum(
        1
        for ln in lines
        if ln.strip() and not ln.strip().startswith(("#", '"""', "'''"))
    )


def _emitted_loc(outputs) -> int:
    from repro.core.compiler import build

    code = build(outputs, "loc_probe").cce_code()
    body = code.split("/* schedule-tree AST")[0]
    return sum(1 for ln in body.splitlines() if ln.strip())


def _cce_loc(name: str) -> int:
    total = 0
    for case in _CCE_SHAPE_CASES[name]:
        if name == "conv2d":
            c, s, k = case
            d = placeholder((16, c, s, s), dtype="fp16", name="D")
            w = placeholder((c, c, k, k), dtype="fp16", name="W")
            t = ops.conv2d(d, w, padding=(k // 2, k // 2), name="conv")
        elif name == "matmul":
            m, n = case
            a = placeholder((m, n), dtype="fp16", name="A")
            b = placeholder((n, m), dtype="fp16", name="B")
            t = ops.matmul(a, b, name="mm")
        else:
            c, s = case
            x = placeholder((16, c, s, s), dtype="fp16", name="X")
            t = ops.relu(x, name="relu")
        total += _emitted_loc(t)
    return total


_TEMPLATES = {
    "conv2d": templates.conv2d_template,
    "matmul": templates.matmul_template,
    "relu": templates.elementwise_template,
}


def test_fig10_lines_of_code(benchmark):
    """LoC of each development style per operator (lower is better)."""

    def compute() -> Dict[str, Dict[str, int]]:
        table = {}
        for name in ("conv2d", "matmul", "relu"):
            dsl = _snippet_loc(name)
            table[name] = {
                "cce_opt": _cce_loc(name),
                "tvm": dsl + _template_loc(_TEMPLATES[name]),
                "akg": dsl,
            }
        return table

    table = run_once(benchmark, compute)
    print("\n[Fig10] lines of code (lower is better)")
    print(f"  {'operator':<10}{'CCE opt':>10}{'TVM':>10}{'AKG':>10}")
    for name, row in table.items():
        print(f"  {name:<10}{row['cce_opt']:>10}{row['tvm']:>10}{row['akg']:>10}")
    if benchmark is not None:
        for name, row in table.items():
            for k, v in row.items():
                benchmark.extra_info[f"{name}_{k}"] = v

    for name, row in table.items():
        assert row["cce_opt"] > row["tvm"] > row["akg"], name
