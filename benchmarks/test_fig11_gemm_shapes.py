"""Fig. 11: GEMM execution cycles across 41 shape configurations.

The paper sweeps square GEMMs from (64, 64) to (4608, 4608), comparing
AKG against the TVM baseline: both scale similarly, AKG's DP-grouped
synchronisation gives it fewer cycles on most configurations (29 of 41
in the paper), with TVM winning a handful through its manual padding.

Default grid: every 4th shape; set ``REPRO_FULL=1`` for all 41.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from benchmarks.common import FULL, cached_cycles, run_once
from repro.ir import ops
from repro.ir.tensor import placeholder

ALL_SIZES = [64 + round(k * (4608 - 64) / 40 / 16) * 16 for k in range(41)]
SIZES = ALL_SIZES if FULL else ALL_SIZES[::4]


def _gemm(n: int):
    a = placeholder((n, n), dtype="fp16", name="A")
    b = placeholder((n, n), dtype="fp16", name="B")
    return ops.matmul(a, b, name=f"gemm{n}")


def test_fig11_gemm_sweep(benchmark):
    """Cycles per shape for AKG and TVM (lower is better)."""

    def compute() -> List[Tuple[int, int, int]]:
        rows = []
        for n in SIZES:
            akg = cached_cycles("akg", ("gemm", n), lambda: _gemm(n))
            tvm = cached_cycles("tvm", ("gemm", n), lambda: _gemm(n))
            rows.append((n, akg, tvm))
        return rows

    rows = run_once(benchmark, compute)
    print("\n[Fig11] GEMM cycles (lower is better; 1 us = 1e3 cycles)")
    print(f"  {'shape':>8}{'AKG':>14}{'TVM':>14}{'TVM/AKG':>10}")
    wins = 0
    for n, akg, tvm in rows:
        mark = "*" if akg <= tvm else " "
        wins += akg <= tvm
        print(f"  {n:>8}{akg:>14}{tvm:>14}{tvm / akg:>10.3f} {mark}")
    print(f"  AKG wins {wins} / {len(rows)} configurations")
    if benchmark is not None:
        benchmark.extra_info["akg_wins"] = wins
        benchmark.extra_info["configs"] = len(rows)

    # Paper shape: similar scaling, AKG ahead on the majority of shapes.
    assert wins >= len(rows) * 0.6
    # Similar fluctuation: no shape is off by more than ~2x either way.
    for n, akg, tvm in rows:
        assert 0.5 < tvm / akg < 2.0, f"shape {n} diverges"
