"""Manual control: the Fig. 4 tiling policy and Fig. 8 NPU specification.

AKG is fully automatic, but Sec. 4.2/4.6 define two small languages for
manual intervention and debugging:

- the tile-size specification language (Fig. 4) pins tile sizes and
  buffer placements per polyhedral statement;
- the memory-hierarchy specification language (Fig. 8) redefines the
  machine itself (buffer capacities, unit throughputs, dataflow edges).

Run:  python examples/manual_specs.py
"""

from repro.core.compiler import AkgOptions, build
from repro.hw.spec_lang import parse_npu_spec
from repro.ir import ops
from repro.ir.tensor import placeholder
from repro.tiling.spec import parse_tiling_policy


def kernel():
    x = placeholder((256, 256), dtype="fp16", name="X")
    return ops.sigmoid(ops.scalar_mul(x, 2.0, name="S"), name="OUT")


def main():
    # --- Fig. 4: pin the tile sizes of statement S0 -----------------------
    policy_text = "S_0: 32@UB, 256@UB"
    policy = parse_tiling_policy(policy_text)
    print("tiling policy:")
    print(" ", policy.render())
    manual = build(kernel(), "manual", options=AkgOptions(tile_policy=policy))
    print(f"  -> tiles {manual.tile_sizes}, {manual.cycles()} cycles")

    auto = build(kernel(), "auto")
    print(f"auto tiling -> tiles {auto.tile_sizes}, {auto.cycles()} cycles")

    # --- Fig. 8: describe a smaller NPU and recompile ----------------------
    npu_text = """
    buf UB (65536)
    vector (UB -> UB, 256, 32)
    dataflow (GM -> UB, 64, 32)
    """
    npu = parse_npu_spec(npu_text)
    print("\nnpu specification:")
    for stmt in npu.statements:
        print(" ", stmt)
    small_hw = npu.to_hardware_spec()
    small = build(kernel(), "small", hw=small_hw)
    print(
        f"  -> on the small NPU: tiles {small.tile_sizes}, "
        f"{small.cycles()} cycles (smaller UB forces smaller tiles; "
        f"half the GM bandwidth roughly doubles the DMA time)"
    )


if __name__ == "__main__":
    main()
