"""Quickstart: express a kernel, compile it with AKG, run and inspect it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.compiler import AkgOptions, build
from repro.ir import ops
from repro.ir.tensor import placeholder


def main():
    # 1. Express the computation in the te DSL (what the graph engine
    #    hands to AKG for one fused operator).
    x = placeholder((64, 128), dtype="fp16", name="X")
    y = placeholder((64, 128), dtype="fp16", name="Y")
    z = ops.relu(ops.add(x, y, name="SUM"), name="Z")

    # 2. Compile: polyhedral scheduling, auto tiling, post-tiling fusion,
    #    storage promotion, vectorised code generation.
    result = build(z, "quickstart", options=AkgOptions(emit_trace=True))
    print("tile sizes chosen by Auto Tiling:", result.tile_sizes)
    print("schedule tree:")
    print(result.tree.render())

    # 3. Simulate on the DaVinci-like NPU model.
    report = result.simulate()
    print(f"\nsimulated cycles: {report.total_cycles}")
    print(f"DMA bytes moved:  {report.dma_bytes}")
    print(f"synchronisations: {report.sync_count}")

    # 4. Execute functionally and check against numpy.
    rng = np.random.default_rng(0)
    xv = rng.standard_normal((64, 128)).astype(np.float16)
    yv = rng.standard_normal((64, 128)).astype(np.float16)
    out = result.execute({"X": xv, "Y": yv})["Z"]
    np.testing.assert_allclose(
        out, np.maximum(xv + yv, 0), rtol=1e-2, atol=1e-3
    )
    print("\nfunctional replay matches numpy - OK")

    # 5. Look at the generated CCE-like kernel.
    print("\ngenerated CCE code:")
    print(result.cce_code())


if __name__ == "__main__":
    main()
