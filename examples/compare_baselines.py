"""Compare the four compiler paths on a paper-style fused subgraph.

A long FP16 vector chain (like Table 1's subgraph2) compiled through:

- naive CCE       (per-op, scalar-era discipline: no latency hiding)
- optimized CCE   (per-op expert kernels with prefetching, no fusion)
- the TVM baseline (templates + compute_at fusion + empirical sync)
- AKG             (polyhedral scheduling + post-tiling fusion + DP sync)

Run:  python examples/compare_baselines.py
"""

from repro.cce import cce_expert_build, cce_naive_build
from repro.core.compiler import build
from repro.ir import ops
from repro.ir.tensor import placeholder
from repro.tvmbaseline.compiler import tvm_build


def chain():
    x = placeholder((64, 128, 16, 16), dtype="fp16", name="X")
    y = placeholder((64, 128, 16, 16), dtype="fp16", name="Y")
    t = ops.scalar_mul(x, 1.01, name="s0")
    t = ops.relu(t, name="r0")
    t = ops.mul(t, y, name="m0")
    t = ops.sigmoid(t, name="sig")
    t = ops.add(t, x, name="res")
    t = ops.tanh_op(t, name="tanh")
    t = ops.scalar_add(t, 0.5, name="out")
    return t


def main():
    sub = chain()
    results = {
        "naive CCE    ": cce_naive_build(chain(), "naive").cycles(),
        "optimized CCE": cce_expert_build(chain(), "expert").cycles(),
        "TVM baseline ": tvm_build(chain(), "tvm").cycles(),
        "AKG          ": build(chain(), "akg").cycles(),
    }
    akg = results["AKG          "]
    print("7-op FP16 vector subgraph on (64,128,16,16):\n")
    print(f"{'version':<16}{'cycles':>12}{'vs AKG':>10}")
    for name, cycles in results.items():
        print(f"{name:<16}{cycles:>12}{cycles / akg:>9.2f}x")
    print(
        "\nThe expert's per-operator kernels round-trip global memory"
        " between every op; the compilers fuse the chain into one tile"
        " nest (this is Fig. 12's story)."
    )


if __name__ == "__main__":
    main()
