"""The paper's running example (Fig. 3): post-tiling fusion in action.

A bias addition feeds a 2-D convolution followed by two vector operators.
The convolution reads the bias-added map with a sliding window, so fusing
it needs *overlapped* producer tiles -- exactly what AKG's reverse tiling
strategy plus extension nodes provide (Sec. 4.2-4.3), and what the
classic pre-tiling fusion of other compilers cannot express.

Run:  python examples/conv_fusion.py
"""

import numpy as np

from repro.core.compiler import AkgOptions, build
from repro.ir import ops
from repro.ir.tensor import compute, placeholder, reduce_axis, te_sum
from repro.runtime.reference import evaluate_tensors


def running_example(H=66, W=66, KH=3, KW=3):
    a = placeholder((H, W), dtype="fp16", name="A")
    a1 = ops.scalar_add(a, 1.0, name="A1")  # S0: bias
    b = placeholder((KH, KW), dtype="fp16", name="B")
    kh = reduce_axis((0, KH), "kh")
    kw = reduce_axis((0, KW), "kw")
    c = compute(  # S1 (init) + S2 (update): the convolution
        (H - KH + 1, W - KW + 1),
        lambda h, w: te_sum(a1[h + kh, w + kw] * b[kh, kw], axis=(kh, kw)),
        name="C",
    )
    c1 = ops.abs_op(c, name="C1")  # S3
    return ops.relu(c1, name="C2")  # S4


def main():
    out = running_example()

    fused = build(out, "fused", options=AkgOptions(emit_trace=True))
    unfused = build(
        out, "unfused", options=AkgOptions(post_tiling_fusion=False)
    )

    print("=== schedule tree after post-tiling fusion (cf. Fig. 3e) ===")
    print(fused.tree.render())

    group = fused.groups[-1]
    print("\nfused tile nest:")
    print("  tile sizes :", group.tile_sizes)
    print("  tile counts:", group.tile_counts)
    print("  producers fused via extension node:", group.fused_producer_ids)
    print("  overlapped producer instances per tile:",
          group.instance_extents("S0"))

    f_cycles, u_cycles = fused.cycles(), unfused.cycles()
    print(f"\ncycles with post-tiling fusion   : {f_cycles}")
    print(f"cycles without (separate nests)  : {u_cycles}")
    print(f"fusion benefit                   : {u_cycles / f_cycles:.2f}x")

    # Verify numerics against the reference executor.
    rng = np.random.default_rng(1)
    inputs = {
        "A": rng.standard_normal((66, 66)).astype(np.float16),
        "B": rng.standard_normal((3, 3)).astype(np.float16),
    }
    ref = evaluate_tensors(out, inputs)["C2"]
    got = fused.execute(inputs)["C2"]
    np.testing.assert_allclose(got, ref, rtol=2e-2, atol=1e-2)
    print("\nfused execution matches the reference - OK")


if __name__ == "__main__":
    main()
