"""Auto-tune GEMM tile sizes with the Sec. 5.3 ML-guided tuner.

Shows the two-round sampling procedure: random first round, model-guided
second round, and the comparison against the analytic Auto Tiling choice.

Run:  python examples/autotune_gemm.py
"""

from repro.autotune import tune_tile_sizes
from repro.core.compiler import AkgOptions, build
from repro.ir import ops
from repro.ir.tensor import placeholder


def gemm(n=512):
    a = placeholder((n, n), dtype="fp16", name="A")
    b = placeholder((n, n), dtype="fp16", name="B")
    return ops.matmul(a, b, name="gemm")


def main():
    auto = build(gemm(), "auto")
    print(f"Auto Tiling choice : {auto.tile_sizes} -> {auto.cycles()} cycles")

    best, history = tune_tile_sizes(
        gemm(), "tuned", first_round=12, round_size=6, max_rounds=3
    )
    tuned_cycles = min(r.cycles for r in history)
    print(f"auto-tuner choice  : {best} -> {int(tuned_cycles)} cycles")
    print(f"measurements taken : {len(history)}")

    print("\ntop five candidates:")
    for rec in sorted(history, key=lambda r: r.cycles)[:5]:
        print(f"  sizes {rec.sizes!s:<14} {int(rec.cycles)} cycles")

    check = build(gemm(), "check", options=AkgOptions(tile_sizes=best))
    print(f"\nrebuilt at tuned sizes: {check.cycles()} cycles")


if __name__ == "__main__":
    main()
